package nbody

import (
	"math"
	"testing"
	"testing/quick"

	"threadsched/internal/cache"
	"threadsched/internal/core"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

func TestNewSystemDeterministic(t *testing.T) {
	a := NewSystem(100, 7)
	b := NewSystem(100, 7)
	for i := range a.Bodies {
		if a.Bodies[i] != b.Bodies[i] {
			t.Fatalf("body %d differs between equal-seed systems", i)
		}
	}
	c := NewSystem(100, 8)
	same := true
	for i := range a.Bodies {
		if a.Bodies[i] != c.Bodies[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical systems")
	}
}

func TestBodiesInsideUnitCube(t *testing.T) {
	s := NewSystem(500, 3)
	for i, b := range s.Bodies {
		for d := 0; d < 3; d++ {
			if b.Pos[d] < 0 || b.Pos[d] > 1 {
				t.Fatalf("body %d outside unit cube: %v", i, b.Pos)
			}
		}
	}
}

func TestTreeContainsEveryBodyOnce(t *testing.T) {
	s := NewSystem(300, 5)
	tree := Build(s, nil)
	if got := tree.CountBodies(); got != len(s.Bodies) {
		t.Fatalf("tree holds %d bodies, want %d", got, len(s.Bodies))
	}
}

func TestTreeMassConserved(t *testing.T) {
	s := NewSystem(200, 11)
	tree := Build(s, nil)
	if diff := math.Abs(tree.Mass() - s.TotalMass()); diff > 1e-12 {
		t.Fatalf("tree mass %v vs system %v", tree.Mass(), s.TotalMass())
	}
}

func TestTreeBoundsContainAllBodies(t *testing.T) {
	s := NewSystem(100, 2)
	tree := Build(s, nil)
	for i, b := range s.Bodies {
		if !tree.Contains(b.Pos) {
			t.Fatalf("body %d outside tree bounds", i)
		}
	}
}

func TestCoincidentBodiesHandled(t *testing.T) {
	// All bodies at the same point must still build and count correctly.
	s := NewSystem(10, 1)
	for i := range s.Bodies {
		s.Bodies[i].Pos = [3]float64{0.5, 0.5, 0.5}
	}
	tree := Build(s, nil)
	if got := tree.CountBodies(); got != 10 {
		t.Fatalf("coincident tree holds %d bodies, want 10", got)
	}
	if diff := math.Abs(tree.Mass() - s.TotalMass()); diff > 1e-12 {
		t.Fatalf("coincident tree mass %v vs %v", tree.Mass(), s.TotalMass())
	}
	// Accel at a displaced point must see the full mass.
	acc := tree.Accel(s, [3]float64{0.6, 0.5, 0.5}, nil)
	want := s.DirectAccelAt([3]float64{0.6, 0.5, 0.5})
	for d := 0; d < 3; d++ {
		if math.Abs(acc[d]-want[d]) > 1e-9 {
			t.Fatalf("coincident accel %v, want %v", acc, want)
		}
	}
}

// Property: as θ→0 the tree force converges to the direct sum.
func TestTreeForceMatchesDirectSmallTheta(t *testing.T) {
	s := NewSystem(150, 9)
	s.Theta = 0 // every traversal opens down to leaves
	tree := Build(s, nil)
	for _, i := range []int{0, 17, 90, 149} {
		got := tree.Accel(s, s.Bodies[i].Pos, nil)
		want := s.DirectAccel(i)
		for d := 0; d < 3; d++ {
			rel := math.Abs(got[d]-want[d]) / (math.Abs(want[d]) + 1e-12)
			if rel > 1e-9 {
				t.Fatalf("body %d axis %d: tree %v direct %v", i, d, got, want)
			}
		}
	}
}

func TestTreeForceApproximatesDirectModerateTheta(t *testing.T) {
	s := NewSystem(400, 13)
	s.Theta = 0.5
	tree := Build(s, nil)
	var worst float64
	for i := 0; i < len(s.Bodies); i += 37 {
		got := tree.Accel(s, s.Bodies[i].Pos, nil)
		want := s.DirectAccel(i)
		var gn, dn float64
		for d := 0; d < 3; d++ {
			gn += (got[d] - want[d]) * (got[d] - want[d])
			dn += want[d] * want[d]
		}
		if rel := math.Sqrt(gn / (dn + 1e-30)); rel > worst {
			worst = rel
		}
	}
	if worst > 0.05 {
		t.Fatalf("θ=0.5 worst relative force error %v > 5%%", worst)
	}
}

func TestThreadedStepMatchesUnthreadedExactly(t *testing.T) {
	a := NewSystem(400, 21)
	b := a.Clone()
	for step := 0; step < 3; step++ {
		StepUnthreaded(a, nil)
		StepThreaded(b, ThreadedScheduler(1<<16), nil)
	}
	for i := range a.Bodies {
		if a.Bodies[i] != b.Bodies[i] {
			t.Fatalf("body %d diverged after threaded steps:\n%+v\n%+v",
				i, a.Bodies[i], b.Bodies[i])
		}
	}
}

func TestThreadedStepBinStats(t *testing.T) {
	s := NewSystem(2000, 4)
	sched := ThreadedScheduler(1 << 18)
	StepThreaded(s, sched, nil)
	st := sched.Stats()
	if st.TotalForked != 2000 {
		t.Fatalf("forked %d, want 2000", st.TotalForked)
	}
	if st.TotalRun != 2000 {
		t.Fatalf("ran %d, want 2000", st.TotalRun)
	}
}

func TestHintsInRange(t *testing.T) {
	s := NewSystem(50, 6)
	tree := Build(s, nil)
	cacheSize := uint64(1 << 16)
	f := func(x, y, z float64) bool {
		pos := [3]float64{math.Mod(math.Abs(x), 1), math.Mod(math.Abs(y), 1), math.Mod(math.Abs(z), 1)}
		h1, h2, h3 := Hints(tree, cacheSize, pos)
		limit := HintSpanFactor * cacheSize
		return h1 <= limit && h2 <= limit && h3 <= limit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMomentumNearlyConserved(t *testing.T) {
	// Gravity is pairwise; the direct sum conserves momentum exactly and
	// the Barnes–Hut approximation must conserve it to within the θ
	// error. Test over several steps: total momentum drift stays small
	// relative to the momentum scale of individual bodies.
	s := NewSystem(500, 37)
	mom := func() [3]float64 {
		var p [3]float64
		for _, b := range s.Bodies {
			for d := 0; d < 3; d++ {
				p[d] += b.Mass * b.Vel[d]
			}
		}
		return p
	}
	var scale float64
	for _, b := range s.Bodies {
		for d := 0; d < 3; d++ {
			v := b.Mass * b.Vel[d]
			if v < 0 {
				v = -v
			}
			scale += v
		}
	}
	before := mom()
	for i := 0; i < 5; i++ {
		StepUnthreaded(s, nil)
	}
	after := mom()
	for d := 0; d < 3; d++ {
		drift := after[d] - before[d]
		if drift < 0 {
			drift = -drift
		}
		if drift > 0.05*scale {
			t.Fatalf("momentum axis %d drifted %v (scale %v)", d, drift, scale)
		}
	}
}

func TestTreeNodesBounded(t *testing.T) {
	s := NewSystem(1000, 41)
	tree := Build(s, nil)
	if tree.Nodes() < 1000 {
		t.Fatalf("tree has %d nodes for 1000 bodies", tree.Nodes())
	}
	// An insertion octree over points in general position stays linear
	// in n (the clamp in NewTracer assumes ≤ 4n+64).
	if tree.Nodes() > 4*1000 {
		t.Fatalf("tree has %d nodes, exceeding the 4n arena assumption", tree.Nodes())
	}
}

func TestEnergyScaleStaysBounded(t *testing.T) {
	// A loose sanity bound: a few small steps must not blow the system up.
	s := NewSystem(200, 17)
	var before float64
	for _, b := range s.Bodies {
		before += b.Vel[0]*b.Vel[0] + b.Vel[1]*b.Vel[1] + b.Vel[2]*b.Vel[2]
	}
	for i := 0; i < 5; i++ {
		StepUnthreaded(s, nil)
	}
	var after float64
	for _, b := range s.Bodies {
		after += b.Vel[0]*b.Vel[0] + b.Vel[1]*b.Vel[1] + b.Vel[2]*b.Vel[2]
	}
	if math.IsNaN(after) || after > 1e6*(before+1) {
		t.Fatalf("kinetic scale exploded: %v -> %v", before, after)
	}
}

func TestTracedStepMatchesUntraced(t *testing.T) {
	a := NewSystem(200, 23)
	b := a.Clone()
	StepUnthreaded(a, nil)

	cpu := sim.NewCPU(trace.Discard)
	as := vm.NewAddressSpace()
	tr := NewTracer(cpu, as, len(b.Bodies))
	StepUnthreaded(b, tr)
	for i := range a.Bodies {
		if a.Bodies[i] != b.Bodies[i] {
			t.Fatalf("tracing changed the computation at body %d", i)
		}
	}
	if cpu.Instructions == 0 {
		t.Fatal("no instructions charged")
	}
}

func TestTracedThreadedMatchesUnthreaded(t *testing.T) {
	a := NewSystem(300, 29)
	b := a.Clone()
	StepUnthreaded(a, nil)

	cpu := sim.NewCPU(trace.Discard)
	as := vm.NewAddressSpace()
	tr := NewTracer(cpu, as, len(b.Bodies))
	th := sim.NewThreads(cpu, as, ThreadedScheduler(1<<16))
	StepThreadedTraced(b, th, tr)
	for i := range a.Bodies {
		if a.Bodies[i] != b.Bodies[i] {
			t.Fatalf("traced threaded step diverged at body %d", i)
		}
	}
}

// Shape test for Table 9: threading must cut L2 capacity misses by about
// a factor of 2 (paper: 1,131K → 495K, ×2.3).
func TestThreadingCutsL2CapacityMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled cache simulation")
	}
	// The traversal footprint shrinks only logarithmically with n, so the
	// N-body experiment scales caches by 16 (not 64) with n = 64000/8;
	// see EXPERIMENTS.md.
	mach := machine.R8000().Scaled(16)
	n := 8000

	run := func(threaded bool) (cache.Summary, core.RunStats) {
		h := cache.MustNewHierarchy(mach.Caches, nil)
		cpu := sim.NewCPU(h)
		as := vm.NewAddressSpace()
		s := NewSystem(n, 31)
		tr := NewTracer(cpu, as, n)
		var rs core.RunStats
		if threaded {
			sched := ThreadedScheduler(mach.L2CacheSize())
			th := sim.NewThreads(cpu, as, sched)
			StepThreadedTraced(s, th, tr)
			rs = sched.LastRun()
		} else {
			StepUnthreaded(s, tr)
		}
		return h.Summarize(), rs
	}

	un, _ := run(false)
	th, rs := run(true)
	if un.L2.Capacity == 0 {
		t.Fatal("unthreaded run shows no capacity misses; scaling is wrong")
	}
	// Paper Table 9: capacity misses drop by ×2.3.
	if th.L2.Capacity*2 > un.L2.Capacity {
		t.Errorf("threaded capacity misses %d not < half of unthreaded %d",
			th.L2.Capacity, un.L2.Capacity)
	}
	// §4.4: threads spread over tens of bins, non-uniformly.
	if rs.Bins < 10 || rs.Bins > 200 {
		t.Errorf("threaded run used %d bins; expected tens (paper: 46)", rs.Bins)
	}
	if rs.Threads != n {
		t.Errorf("run stats counted %d threads, want %d", rs.Threads, n)
	}
}

func BenchmarkUnthreadedStep(b *testing.B) {
	s := NewSystem(4000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StepUnthreaded(s, nil)
	}
}

func BenchmarkThreadedStep(b *testing.B) {
	s := NewSystem(4000, 1)
	sched := ThreadedScheduler(2 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StepThreaded(s, sched, nil)
	}
}
