// Package nbody implements the paper's §4.4 workload: a three-dimensional
// N-body simulation using the Barnes–Hut algorithm. Each time step builds
// an octree over the bodies and computes every body's acceleration by
// traversing the tree with the opening-angle criterion; new positions are
// then integrated. Force calculation dominates (the paper profiles >88%
// of the time there) and has no dependencies between bodies, because the
// traversal reads only the tree's snapshot of positions.
//
// Two variants, as evaluated in Tables 8 and 9:
//
//   - Unthreaded: bodies processed in array order.
//   - Threaded: one fine-grained thread per body, hinted with the body's
//     x, y, z coordinates normalized to the unit cube and scaled to the
//     scheduling plane, so bodies that are near each other in space — and
//     therefore traverse largely the same tree nodes — run consecutively.
//
// This is the paper's irregular, dynamic program: the tree is rebuilt
// every iteration and no compile-time reference information exists, which
// is exactly where hint-based runtime scheduling applies and static tiling
// does not.
package nbody

import "math"

// Body is one simulated particle.
type Body struct {
	Pos  [3]float64
	Vel  [3]float64
	Mass float64
}

// System is an N-body problem instance.
type System struct {
	Bodies []Body
	// Theta is the Barnes–Hut opening angle; smaller is more accurate.
	Theta float64
	// Eps is the gravitational softening length.
	Eps float64
	// DT is the integration time step.
	DT float64
	// G is the gravitational constant (1 in model units).
	G float64
}

// rng is a small deterministic generator (xorshift64*) so systems are
// reproducible without importing math/rand.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545f4914f6cdd1d
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// NewSystem builds a clustered n-body system: bodies drawn from a Plummer
// sphere (the standard Barnes–Hut benchmark distribution), truncated and
// rescaled into the unit cube, with small random velocities. Deterministic
// in seed.
func NewSystem(n int, seed uint64) *System {
	r := rng(seed*2654435761 + 1)
	s := &System{
		Bodies: make([]Body, n),
		Theta:  0.7,
		Eps:    1e-3,
		DT:     1e-3,
		G:      1,
	}
	for i := range s.Bodies {
		// Plummer radius: r = (u^(-2/3) - 1)^(-1/2), truncated.
		u := r.float()
		if u < 1e-6 {
			u = 1e-6
		}
		rad := 1 / math.Sqrt(math.Pow(u, -2.0/3.0)-1)
		if rad > 4 {
			rad = 4
		}
		rad /= 10 // keep the cluster well inside the unit cube
		cosT := 2*r.float() - 1
		sinT := math.Sqrt(1 - cosT*cosT)
		phi := 2 * math.Pi * r.float()
		s.Bodies[i] = Body{
			Pos: [3]float64{
				0.5 + rad*sinT*math.Cos(phi),
				0.5 + rad*sinT*math.Sin(phi),
				0.5 + rad*cosT,
			},
			Vel: [3]float64{
				(r.float() - 0.5) * 1e-2,
				(r.float() - 0.5) * 1e-2,
				(r.float() - 0.5) * 1e-2,
			},
			Mass: 1.0 / float64(n),
		}
	}
	return s
}

// Bounds returns the min corner and edge length of the cubic bounding box
// of all bodies (with a small margin so boundary bodies insert cleanly).
func (s *System) Bounds() (min [3]float64, edge float64) {
	min = s.Bodies[0].Pos
	max := min
	for _, b := range s.Bodies[1:] {
		for d := 0; d < 3; d++ {
			if b.Pos[d] < min[d] {
				min[d] = b.Pos[d]
			}
			if b.Pos[d] > max[d] {
				max[d] = b.Pos[d]
			}
		}
	}
	for d := 0; d < 3; d++ {
		if e := max[d] - min[d]; e > edge {
			edge = e
		}
	}
	if edge == 0 {
		edge = 1
	}
	edge *= 1.0001
	return
}

// DirectAccel computes body i's acceleration by direct O(n) summation —
// the oracle the tree code is validated against.
func (s *System) DirectAccel(i int) [3]float64 {
	var acc [3]float64
	bi := &s.Bodies[i]
	for j := range s.Bodies {
		if j == i {
			continue
		}
		bj := &s.Bodies[j]
		dx := bj.Pos[0] - bi.Pos[0]
		dy := bj.Pos[1] - bi.Pos[1]
		dz := bj.Pos[2] - bi.Pos[2]
		d2 := dx*dx + dy*dy + dz*dz + s.Eps*s.Eps
		inv := s.G * bj.Mass / (d2 * math.Sqrt(d2))
		acc[0] += dx * inv
		acc[1] += dy * inv
		acc[2] += dz * inv
	}
	return acc
}

// DirectAccelAt computes the acceleration an observer at pos feels from
// every body, by direct summation.
func (s *System) DirectAccelAt(pos [3]float64) [3]float64 {
	var acc [3]float64
	for j := range s.Bodies {
		bj := &s.Bodies[j]
		dx := bj.Pos[0] - pos[0]
		dy := bj.Pos[1] - pos[1]
		dz := bj.Pos[2] - pos[2]
		d2 := dx*dx + dy*dy + dz*dz
		if d2 == 0 {
			continue
		}
		d2 += s.Eps * s.Eps
		inv := s.G * bj.Mass / (d2 * math.Sqrt(d2))
		acc[0] += dx * inv
		acc[1] += dy * inv
		acc[2] += dz * inv
	}
	return acc
}

// TotalMass returns the summed mass, an invariant of the simulation.
func (s *System) TotalMass() float64 {
	var m float64
	for _, b := range s.Bodies {
		m += b.Mass
	}
	return m
}

// Clone deep-copies the system for comparing variants on identical input.
func (s *System) Clone() *System {
	c := *s
	c.Bodies = append([]Body(nil), s.Bodies...)
	return &c
}
