package nbody

import "math"

// The Barnes–Hut octree. Internal nodes hold aggregate mass and center of
// mass; leaves hold a snapshot of one body's position and mass (taken at
// build time, so force evaluation depends only on the tree, never on the
// mutating body array — this is what makes per-body threads independent).

const (
	noChild = int32(-1)
	// maxDepth bounds insertion recursion; past it, coincident bodies
	// chain as an overflow list on the leaf.
	maxDepth = 48
)

type node struct {
	// center and half describe the cell cube.
	center [3]float64
	half   float64
	// com and mass aggregate the subtree (for a leaf: the body snapshot).
	com  [3]float64
	mass float64
	// children index Tree.nodes; all noChild for a leaf.
	children [8]int32
	// leaf is true for nodes holding bodies directly.
	leaf bool
	// next chains coincident bodies that exceeded maxDepth (rare).
	next int32
}

// Tree is a built Barnes–Hut octree.
type Tree struct {
	nodes []node
	root  int32
	// Min and Edge record the bounding cube the tree was built in.
	Min  [3]float64
	Edge float64
}

// Nodes returns the number of tree nodes allocated.
func (t *Tree) Nodes() int { return len(t.nodes) }

func (t *Tree) alloc(center [3]float64, half float64) int32 {
	t.nodes = append(t.nodes, node{center: center, half: half, leaf: true, next: noChild})
	n := &t.nodes[len(t.nodes)-1]
	for i := range n.children {
		n.children[i] = noChild
	}
	return int32(len(t.nodes) - 1)
}

// octant returns which child cube of c contains p, and that cube's center.
func octant(c [3]float64, half float64, p [3]float64) (int, [3]float64) {
	idx := 0
	q := half / 2
	var cc [3]float64
	for d := 0; d < 3; d++ {
		if p[d] >= c[d] {
			idx |= 1 << d
			cc[d] = c[d] + q
		} else {
			cc[d] = c[d] - q
		}
	}
	return idx, cc
}

// Build constructs the octree for the system's current positions. tr may
// be nil; when present the build's memory traffic is charged to it.
func Build(s *System, tr *Tracer) *Tree {
	t := &Tree{}
	t.Rebuild(s, tr)
	return t
}

// Rebuild reconstructs the octree for the system's current positions,
// reusing the tree's node pool: after the first build the capacity is
// warm and rebuilding allocates nothing (alloc overwrites pool slots via
// append). Node identifiers, contents and tracer traffic are identical to
// a fresh Build.
func (t *Tree) Rebuild(s *System, tr *Tracer) {
	min, edge := s.Bounds()
	t.Min, t.Edge = min, edge
	if t.nodes == nil {
		t.nodes = make([]node, 0, 2*len(s.Bodies)+8)
	} else {
		t.nodes = t.nodes[:0]
	}
	center := [3]float64{min[0] + edge/2, min[1] + edge/2, min[2] + edge/2}
	t.root = t.alloc(center, edge/2)
	t.nodes[t.root].mass = 0
	first := true
	for i := range s.Bodies {
		b := &s.Bodies[i]
		tr.loadBodyPos(i)
		if first {
			// Root starts as a leaf holding the first body.
			r := &t.nodes[t.root]
			r.com = b.Pos
			r.mass = b.Mass
			tr.storeNode(t.root)
			first = false
			continue
		}
		t.insert(t.root, b.Pos, b.Mass, 0, tr)
	}
}

// insert adds a body snapshot below node k. The descent is an iterative
// loop — the recursive reference's tail calls become `k = child` and the
// split case re-enters the same node — emitting the identical node,
// trace, and floating-point sequence with no call overhead (see
// insertRef).
func (t *Tree) insert(k int32, pos [3]float64, mass float64, depth int, tr *Tracer) {
	for {
		tr.loadNode(k)
		n := &t.nodes[k]
		if n.leaf {
			if n.mass == 0 {
				// Empty leaf: take the body.
				n.com = pos
				n.mass = mass
				tr.storeNode(k)
				return
			}
			if depth >= maxDepth {
				// Coincident overflow: chain a pseudo-leaf.
				ov := t.alloc(n.center, n.half)
				n = &t.nodes[k] // alloc may have moved the slice
				t.nodes[ov].com = pos
				t.nodes[ov].mass = mass
				t.nodes[ov].next = n.next
				n.next = ov
				tr.storeNode(k)
				return
			}
			// Occupied leaf: split — push the resident body down, then
			// re-enter this (now internal) node with the new body.
			oldCom, oldMass := n.com, n.mass
			n.leaf = false
			n.com = [3]float64{}
			n.mass = 0
			t.pushDown(k, oldCom, oldMass, depth, tr)
			continue
		}
		// Internal: update aggregate, descend.
		invM := n.mass + mass
		for d := 0; d < 3; d++ {
			n.com[d] = (n.com[d]*n.mass + pos[d]*mass) / invM
		}
		n.mass = invM
		tr.storeNode(k)
		idx, cc := octant(n.center, n.half, pos)
		child := n.children[idx]
		if child == noChild {
			child = t.alloc(cc, n.half/2)
			t.nodes[k].children[idx] = child
			t.nodes[child].com = pos
			t.nodes[child].mass = mass
			tr.storeNode(child)
			return
		}
		k = child
		depth++
	}
}

// pushDown places an existing body snapshot into the correct child of the
// freshly split internal node k, and seeds k's aggregate with it.
func (t *Tree) pushDown(k int32, pos [3]float64, mass float64, depth int, tr *Tracer) {
	n := &t.nodes[k]
	n.com = pos
	n.mass = mass
	idx, cc := octant(n.center, n.half, pos)
	child := t.alloc(cc, n.half/2)
	n = &t.nodes[k]
	n.children[idx] = child
	t.nodes[child].com = pos
	t.nodes[child].mass = mass
	tr.storeNode(child)
}

// accelStackLen bounds Accel's explicit DFS stack: at most seven pending
// siblings per level of a (maxDepth+1)-deep tree, plus the root.
const accelStackLen = 7*(maxDepth+1) + 1

// Accel computes the acceleration at pos (excluding self-interaction via
// the softening; the caller's own snapshot contributes zero force because
// the displacement is zero). tr may be nil.
//
// The traversal is a flattened depth-first walk over an explicit stack;
// children are pushed in reverse index order so nodes pop in exactly the
// recursive reference's visit order — the acceleration sums in the same
// order and the trace is identical (see accelRef).
func (t *Tree) Accel(s *System, pos [3]float64, tr *Tracer) [3]float64 {
	var acc [3]float64
	var stack [accelStackLen]int32
	stack[0] = t.root
	sp := 1
	for sp > 0 {
		sp--
		k := stack[sp]
		tr.loadNode(k)
		n := &t.nodes[k]
		dx := n.com[0] - pos[0]
		dy := n.com[1] - pos[1]
		dz := n.com[2] - pos[2]
		d2 := dx*dx + dy*dy + dz*dz
		if n.leaf || (2*n.half)*(2*n.half) < s.Theta*s.Theta*d2 {
			// Interact with the aggregate (or the single body).
			tr.interact()
			if n.mass != 0 && d2 > 0 {
				d2e := d2 + s.Eps*s.Eps
				inv := s.G * n.mass / (d2e * math.Sqrt(d2e))
				acc[0] += dx * inv
				acc[1] += dy * inv
				acc[2] += dz * inv
			}
			for ov := n.next; ov != noChild; ov = t.nodes[ov].next {
				tr.loadNode(ov)
				tr.interact()
				o := &t.nodes[ov]
				ox := o.com[0] - pos[0]
				oy := o.com[1] - pos[1]
				oz := o.com[2] - pos[2]
				od2 := ox*ox + oy*oy + oz*oz
				if od2 == 0 {
					continue
				}
				od2e := od2 + s.Eps*s.Eps
				inv := s.G * o.mass / (od2e * math.Sqrt(od2e))
				acc[0] += ox * inv
				acc[1] += oy * inv
				acc[2] += oz * inv
			}
			continue
		}
		for ci := 7; ci >= 0; ci-- {
			if c := n.children[ci]; c != noChild {
				stack[sp] = c
				sp++
			}
		}
	}
	return acc
}

// Mass returns the root aggregate mass; equals the system's total mass.
func (t *Tree) Mass() float64 { return t.nodes[t.root].mass }

// Contains reports whether pos lies in the tree's bounding cube.
func (t *Tree) Contains(pos [3]float64) bool {
	for d := 0; d < 3; d++ {
		if pos[d] < t.Min[d] || pos[d] > t.Min[d]+t.Edge {
			return false
		}
	}
	return true
}

// CountBodies walks the tree counting body snapshots; tests use it to
// verify every body landed in exactly one leaf (or overflow chain).
func (t *Tree) CountBodies() int {
	count := 0
	var walk func(k int32)
	walk = func(k int32) {
		n := &t.nodes[k]
		for ov := n.next; ov != noChild; ov = t.nodes[ov].next {
			count++
		}
		if n.leaf {
			if n.mass != 0 {
				count++
			}
			return
		}
		for _, c := range n.children {
			if c != noChild {
				walk(c)
			}
		}
	}
	walk(t.root)
	return count
}
