package nbody

import "math"

// The pre-optimization recursive tree build and traversal, kept as the
// differential-test oracle and speedup baseline for the iterative,
// pool-reusing versions in tree.go. Both emit the identical node layout,
// tracer traffic, and floating-point operation sequence.

// BuildRef constructs the octree with the recursive insertion and a fresh
// node allocation, exactly as the pre-optimization Build did.
func BuildRef(s *System, tr *Tracer) *Tree {
	min, edge := s.Bounds()
	t := &Tree{Min: min, Edge: edge}
	t.nodes = make([]node, 0, 2*len(s.Bodies)+8)
	center := [3]float64{min[0] + edge/2, min[1] + edge/2, min[2] + edge/2}
	t.root = t.alloc(center, edge/2)
	t.nodes[t.root].mass = 0
	first := true
	for i := range s.Bodies {
		b := &s.Bodies[i]
		tr.loadBodyPos(i)
		if first {
			r := &t.nodes[t.root]
			r.com = b.Pos
			r.mass = b.Mass
			tr.storeNode(t.root)
			first = false
			continue
		}
		t.insertRef(t.root, b.Pos, b.Mass, 0, tr)
	}
	return t
}

// insertRef adds a body snapshot below node k, recursively.
func (t *Tree) insertRef(k int32, pos [3]float64, mass float64, depth int, tr *Tracer) {
	tr.loadNode(k)
	n := &t.nodes[k]
	if n.leaf {
		if n.mass == 0 {
			n.com = pos
			n.mass = mass
			tr.storeNode(k)
			return
		}
		if depth >= maxDepth {
			ov := t.alloc(n.center, n.half)
			n = &t.nodes[k] // alloc may have moved the slice
			t.nodes[ov].com = pos
			t.nodes[ov].mass = mass
			t.nodes[ov].next = n.next
			n.next = ov
			tr.storeNode(k)
			return
		}
		oldCom, oldMass := n.com, n.mass
		n.leaf = false
		n.com = [3]float64{}
		n.mass = 0
		t.pushDown(k, oldCom, oldMass, depth, tr)
		t.insertRef(k, pos, mass, depth, tr)
		return
	}
	invM := n.mass + mass
	for d := 0; d < 3; d++ {
		n.com[d] = (n.com[d]*n.mass + pos[d]*mass) / invM
	}
	n.mass = invM
	tr.storeNode(k)
	idx, cc := octant(n.center, n.half, pos)
	child := n.children[idx]
	if child == noChild {
		child = t.alloc(cc, n.half/2)
		t.nodes[k].children[idx] = child
		t.nodes[child].com = pos
		t.nodes[child].mass = mass
		tr.storeNode(child)
		return
	}
	t.insertRef(child, pos, mass, depth+1, tr)
}

// AccelRef computes the acceleration at pos with the recursive traversal.
func (t *Tree) AccelRef(s *System, pos [3]float64, tr *Tracer) [3]float64 {
	var acc [3]float64
	t.accelRef(t.root, s, pos, &acc, tr)
	return acc
}

func (t *Tree) accelRef(k int32, s *System, pos [3]float64, acc *[3]float64, tr *Tracer) {
	tr.loadNode(k)
	n := &t.nodes[k]
	dx := n.com[0] - pos[0]
	dy := n.com[1] - pos[1]
	dz := n.com[2] - pos[2]
	d2 := dx*dx + dy*dy + dz*dz
	if n.leaf || (2*n.half)*(2*n.half) < s.Theta*s.Theta*d2 {
		tr.interact()
		if n.mass != 0 && d2 > 0 {
			d2e := d2 + s.Eps*s.Eps
			inv := s.G * n.mass / (d2e * math.Sqrt(d2e))
			acc[0] += dx * inv
			acc[1] += dy * inv
			acc[2] += dz * inv
		}
		for ov := n.next; ov != noChild; ov = t.nodes[ov].next {
			tr.loadNode(ov)
			tr.interact()
			o := &t.nodes[ov]
			ox := o.com[0] - pos[0]
			oy := o.com[1] - pos[1]
			oz := o.com[2] - pos[2]
			od2 := ox*ox + oy*oy + oz*oz
			if od2 == 0 {
				continue
			}
			od2e := od2 + s.Eps*s.Eps
			inv := s.G * o.mass / (od2e * math.Sqrt(od2e))
			acc[0] += ox * inv
			acc[1] += oy * inv
			acc[2] += oz * inv
		}
		return
	}
	for _, c := range n.children {
		if c != noChild {
			t.accelRef(c, s, pos, acc, tr)
		}
	}
}

// StepUnthreadedRef advances one step on the recursive build and
// traversal with a fresh tree allocation — the pre-optimization step,
// kept as the speedup baseline.
func StepUnthreadedRef(s *System, tr *Tracer) *Tree {
	t := BuildRef(s, tr)
	for i := range s.Bodies {
		tr.loadBodyPos(i)
		acc := t.AccelRef(s, s.Bodies[i].Pos, tr)
		b := &s.Bodies[i]
		for d := 0; d < 3; d++ {
			b.Vel[d] += acc[d] * s.DT
			b.Pos[d] += b.Vel[d] * s.DT
		}
		tr.update(i)
	}
	return t
}
