package nbody

import (
	"sync"

	"threadsched/internal/core"
	"threadsched/internal/sim"
)

// applyBody computes body i's acceleration from the tree snapshot and
// integrates its state (symplectic Euler). Independent across bodies.
func applyBody(s *System, t *Tree, i int, tr *Tracer) {
	tr.loadBodyPos(i)
	acc := t.Accel(s, s.Bodies[i].Pos, tr)
	b := &s.Bodies[i]
	for d := 0; d < 3; d++ {
		b.Vel[d] += acc[d] * s.DT
		b.Pos[d] += b.Vel[d] * s.DT
	}
	tr.update(i)
}

// StepUnthreaded advances the system one time step, processing bodies in
// array order. tr may be nil. It returns the tree (for inspection).
func StepUnthreaded(s *System, tr *Tracer) *Tree {
	t := &Tree{}
	StepUnthreadedReuse(s, t, tr)
	return t
}

// StepUnthreadedReuse is StepUnthreaded rebuilding into t's node pool, so
// stepping in a loop allocates nothing once the pool is warm.
func StepUnthreadedReuse(s *System, t *Tree, tr *Tracer) {
	t.Rebuild(s, tr)
	for i := range s.Bodies {
		applyBody(s, t, i, tr)
	}
}

// HintSpanFactor scales the unit cube to the dimensions of the scheduling
// plane (§4.4: "normalized the positions to the unit cube and then scaled
// them to the dimensions of the scheduling plane"): each axis spans
// HintSpanFactor × the cache size (one cache size per axis, ~3-4 default blocks), a fixed plane so that sweeping the
// scheduler's block size (Figure 4) genuinely changes the binning.
const HintSpanFactor = 1

// Hints converts a position to the three address hints, normalizing by
// the tree bounds and scaling across the plane for a cache of cacheSize.
func Hints(t *Tree, cacheSize uint64, pos [3]float64) (h1, h2, h3 uint64) {
	span := float64(HintSpanFactor) * float64(cacheSize)
	h := func(d int) uint64 {
		norm := (pos[d] - t.Min[d]) / t.Edge
		if norm < 0 {
			norm = 0
		}
		if norm > 1 {
			norm = 1
		}
		return uint64(norm * span)
	}
	return h(0), h(1), h(2)
}

// Forker abstracts the fork/run surface (core.Scheduler, sim.Threads, or
// a custom dispatcher such as the SMP simulator's) so all threaded steps
// share one implementation.
type Forker interface {
	Fork(f core.Func, arg1, arg2 int, h1, h2, h3 uint64)
	Run(keep bool)
}

type forker = Forker

// schedForker adapts *core.Scheduler to forker.
type schedForker struct{ s *core.Scheduler }

func (f schedForker) Fork(fn core.Func, a1, a2 int, h1, h2, h3 uint64) {
	f.s.Fork(fn, a1, a2, h1, h2, h3)
}
func (f schedForker) Run(keep bool) { f.s.Run(keep) }

// StepThreaded advances the system one time step, forking one thread per
// body with its spatial coordinates as hints. Results are bit-for-bit
// identical to StepUnthreaded: forces come from the tree snapshot, so
// execution order cannot change them.
//
// With a ParallelScheduler and no tracer, forking splits across the
// worker count and Run drains bins on the worker pool; body threads write
// disjoint bodies off an immutable tree snapshot, so the parallel run is
// race-free, bit-identical, and — bins being a pure function of the hints
// — reports identical RunStats.
func StepThreaded(s *System, sched *core.Scheduler, tr *Tracer) *Tree {
	t := &Tree{}
	stepThreadedInto(t, s, schedForker{sched}, sched.CacheSize(), tr, schedForkers(sched, tr))
	return t
}

// StepThreadedReuse is StepThreaded rebuilding into t's node pool.
func StepThreadedReuse(s *System, t *Tree, sched *core.Scheduler, tr *Tracer) {
	stepThreadedInto(t, s, schedForker{sched}, sched.CacheSize(), tr, schedForkers(sched, tr))
}

// schedForkers returns how many goroutines may fork into sched
// concurrently. The tracer charges a single simulated CPU and is not safe
// for concurrent use, so traced runs always fork serially.
func schedForkers(sched *core.Scheduler, tr *Tracer) int {
	if tr != nil || !sched.ConcurrentFork() {
		return 1
	}
	if w := sched.Workers(); w > 1 {
		return w
	}
	return 1
}

func stepThreaded(s *System, f forker, cacheSize uint64, tr *Tracer) *Tree {
	t := &Tree{}
	stepThreadedInto(t, s, f, cacheSize, tr, 1)
	return t
}

func stepThreadedInto(t *Tree, s *System, f forker, cacheSize uint64, tr *Tracer, forkers int) {
	t.Rebuild(s, tr)
	// One closure for every thread: forking must stay allocation-free.
	body := func(i, _ int) { applyBody(s, t, i, tr) }
	forkRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			h1, h2, h3 := Hints(t, cacheSize, s.Bodies[i].Pos)
			f.Fork(body, i, 0, h1, h2, h3)
		}
	}
	if forkers > 1 {
		var wg sync.WaitGroup
		chunk := (len(s.Bodies) + forkers - 1) / forkers
		for lo := 0; lo < len(s.Bodies); lo += chunk {
			hi := lo + chunk
			if hi > len(s.Bodies) {
				hi = len(s.Bodies)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				forkRange(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	} else {
		forkRange(0, len(s.Bodies))
	}
	f.Run(false)
}

// StepThreadedTraced is StepThreaded through the traced scheduler wrapper,
// so fork/run overhead is charged to the simulation as well.
func StepThreadedTraced(s *System, th *sim.Threads, tr *Tracer) *Tree {
	return stepThreaded(s, th, th.Sched.CacheSize(), tr)
}

// StepThreadedWith runs a threaded step through an arbitrary Forker
// (e.g. an SMP bin dispatcher); cacheSize scales the position hints.
func StepThreadedWith(s *System, f Forker, cacheSize uint64, tr *Tracer) *Tree {
	return stepThreaded(s, f, cacheSize, tr)
}

// ThreadedScheduler builds the scheduler configuration for the N-body
// workload: three-dimensional hints, default block size (cache/3).
func ThreadedScheduler(l2Size uint64) *core.Scheduler {
	return core.New(core.Config{CacheSize: l2Size})
}

// ParallelScheduler is ThreadedScheduler's multicore counterpart: the
// same binning plus sharded concurrent fork and the segmented parallel
// run across workers. Close it to release the worker pool.
func ParallelScheduler(l2Size uint64, workers int) *core.Scheduler {
	return core.New(core.Config{
		CacheSize:    l2Size,
		Workers:      workers,
		Dispatch:     core.DispatchSegmented,
		ParallelFork: true,
	})
}
