package nbody

import (
	"threadsched/internal/core"
	"threadsched/internal/sim"
)

// applyBody computes body i's acceleration from the tree snapshot and
// integrates its state (symplectic Euler). Independent across bodies.
func applyBody(s *System, t *Tree, i int, tr *Tracer) {
	tr.loadBodyPos(i)
	acc := t.Accel(s, s.Bodies[i].Pos, tr)
	b := &s.Bodies[i]
	for d := 0; d < 3; d++ {
		b.Vel[d] += acc[d] * s.DT
		b.Pos[d] += b.Vel[d] * s.DT
	}
	tr.update(i)
}

// StepUnthreaded advances the system one time step, processing bodies in
// array order. tr may be nil. It returns the tree (for inspection).
func StepUnthreaded(s *System, tr *Tracer) *Tree {
	t := Build(s, tr)
	for i := range s.Bodies {
		applyBody(s, t, i, tr)
	}
	return t
}

// HintSpanFactor scales the unit cube to the dimensions of the scheduling
// plane (§4.4: "normalized the positions to the unit cube and then scaled
// them to the dimensions of the scheduling plane"): each axis spans
// HintSpanFactor × the cache size (one cache size per axis, ~3-4 default blocks), a fixed plane so that sweeping the
// scheduler's block size (Figure 4) genuinely changes the binning.
const HintSpanFactor = 1

// Hints converts a position to the three address hints, normalizing by
// the tree bounds and scaling across the plane for a cache of cacheSize.
func Hints(t *Tree, cacheSize uint64, pos [3]float64) (h1, h2, h3 uint64) {
	span := float64(HintSpanFactor) * float64(cacheSize)
	h := func(d int) uint64 {
		norm := (pos[d] - t.Min[d]) / t.Edge
		if norm < 0 {
			norm = 0
		}
		if norm > 1 {
			norm = 1
		}
		return uint64(norm * span)
	}
	return h(0), h(1), h(2)
}

// Forker abstracts the fork/run surface (core.Scheduler, sim.Threads, or
// a custom dispatcher such as the SMP simulator's) so all threaded steps
// share one implementation.
type Forker interface {
	Fork(f core.Func, arg1, arg2 int, h1, h2, h3 uint64)
	Run(keep bool)
}

type forker = Forker

// schedForker adapts *core.Scheduler to forker.
type schedForker struct{ s *core.Scheduler }

func (f schedForker) Fork(fn core.Func, a1, a2 int, h1, h2, h3 uint64) {
	f.s.Fork(fn, a1, a2, h1, h2, h3)
}
func (f schedForker) Run(keep bool) { f.s.Run(keep) }

// StepThreaded advances the system one time step, forking one thread per
// body with its spatial coordinates as hints. Results are bit-for-bit
// identical to StepUnthreaded: forces come from the tree snapshot, so
// execution order cannot change them.
func StepThreaded(s *System, sched *core.Scheduler, tr *Tracer) *Tree {
	return stepThreaded(s, schedForker{sched}, sched.CacheSize(), tr)
}

func stepThreaded(s *System, f forker, cacheSize uint64, tr *Tracer) *Tree {
	t := Build(s, tr)
	body := func(i, _ int) { applyBody(s, t, i, tr) }
	for i := range s.Bodies {
		h1, h2, h3 := Hints(t, cacheSize, s.Bodies[i].Pos)
		f.Fork(body, i, 0, h1, h2, h3)
	}
	f.Run(false)
	return t
}

// StepThreadedTraced is StepThreaded through the traced scheduler wrapper,
// so fork/run overhead is charged to the simulation as well.
func StepThreadedTraced(s *System, th *sim.Threads, tr *Tracer) *Tree {
	return stepThreaded(s, th, th.Sched.CacheSize(), tr)
}

// StepThreadedWith runs a threaded step through an arbitrary Forker
// (e.g. an SMP bin dispatcher); cacheSize scales the position hints.
func StepThreadedWith(s *System, f Forker, cacheSize uint64, tr *Tracer) *Tree {
	return stepThreaded(s, f, cacheSize, tr)
}

// ThreadedScheduler builds the scheduler configuration for the N-body
// workload: three-dimensional hints, default block size (cache/3).
func ThreadedScheduler(l2Size uint64) *core.Scheduler {
	return core.New(core.Config{CacheSize: l2Size})
}
