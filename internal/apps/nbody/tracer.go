package nbody

import (
	"threadsched/internal/sim"
	"threadsched/internal/vm"
)

// Tracer charges the N-body computation's memory traffic and instruction
// work to a model CPU. A nil *Tracer is valid everywhere and costs only a
// branch, so the native benchmarks and the cache-simulated runs share one
// implementation of the tree and integrator (the irregular structure makes
// duplicated twins error-prone, and §4.4's comparison needs both variants
// to execute identical arithmetic).
type Tracer struct {
	cpu      *sim.CPU
	bodyBase uint64
	nodeBase uint64
}

// Simulated layout: bodies are 64-byte records (3 position + 3 velocity
// words + mass + pad); tree nodes are 128-byte records (com, mass, cell
// geometry, eight children).
const (
	bodyStride = 64
	nodeStride = 128
)

// Instruction budgets per event.
const (
	interactInstr = 20
	visitInstr    = 10
	insertInstr   = 15
	updateInstr   = 12
	pcVisit       = 0x100
	pcInteract    = 0x180
	pcInsert      = 0x200
	pcUpdate      = 0x280
)

// NewTracer reserves simulated memory for n bodies and a generous tree
// arena, and returns a tracer charging to cpu.
func NewTracer(cpu *sim.CPU, as *vm.AddressSpace, n int) *Tracer {
	return &Tracer{
		cpu:      cpu,
		bodyBase: as.Alloc(uint64(n)*bodyStride, 64),
		nodeBase: as.Alloc(uint64(4*n+64)*nodeStride, 128),
	}
}

// BodyAddr returns the simulated address of body i's record.
func (tr *Tracer) BodyAddr(i int) uint64 { return tr.bodyBase + uint64(i)*bodyStride }

func (tr *Tracer) nodeAddr(k int32) uint64 { return tr.nodeBase + uint64(k)*nodeStride }

// loadBodyPos charges reading body i's position (3 words).
func (tr *Tracer) loadBodyPos(i int) {
	if tr == nil {
		return
	}
	a := tr.BodyAddr(i)
	tr.cpu.Load(a, 8)
	tr.cpu.Load(a+8, 8)
	tr.cpu.Load(a+16, 8)
}

// loadBodyVel charges reading body i's velocity.
func (tr *Tracer) loadBodyVel(i int) {
	if tr == nil {
		return
	}
	a := tr.BodyAddr(i) + 24
	tr.cpu.Load(a, 8)
	tr.cpu.Load(a+8, 8)
	tr.cpu.Load(a+16, 8)
}

// storeBody charges writing body i's position and velocity back.
func (tr *Tracer) storeBody(i int) {
	if tr == nil {
		return
	}
	a := tr.BodyAddr(i)
	for off := uint64(0); off < 48; off += 8 {
		tr.cpu.Store(a+off, 8)
	}
}

// loadNode charges the traversal touch of node k: com + mass + geometry +
// the children words, and the visit instructions.
func (tr *Tracer) loadNode(k int32) {
	if tr == nil {
		return
	}
	tr.cpu.Exec(pcVisit, visitInstr)
	a := tr.nodeAddr(k)
	tr.cpu.Load(a, 8)     // com.x (line-sharing covers com.y/z)
	tr.cpu.Load(a+24, 8)  // mass
	tr.cpu.Load(a+32, 8)  // half
	tr.cpu.Load(a+64, 32) // children
}

// storeNode charges an update of node k's aggregate fields.
func (tr *Tracer) storeNode(k int32) {
	if tr == nil {
		return
	}
	tr.cpu.Exec(pcInsert, insertInstr)
	a := tr.nodeAddr(k)
	tr.cpu.Store(a, 24)    // com
	tr.cpu.Store(a+24, 8)  // mass
	tr.cpu.Store(a+64, 32) // children
}

// interact charges one body–node interaction's arithmetic.
func (tr *Tracer) interact() {
	if tr == nil {
		return
	}
	tr.cpu.Exec(pcInteract, interactInstr)
}

// update charges one body's position/velocity integration.
func (tr *Tracer) update(i int) {
	if tr == nil {
		return
	}
	tr.cpu.Exec(pcUpdate, updateInstr)
	tr.loadBodyVel(i)
	tr.storeBody(i)
}
