package matmul

import (
	"math"
	"testing"
)

// TestTiledTransposedMatchesRefBitwise requires the 4×4 micro-kernel to
// be bit-identical to the pre-optimization 3×3 kernel: both accumulate
// each C element in ascending-k order within a tile and add tiles in
// the same sequence, so the association is unchanged.
func TestTiledTransposedMatchesRefBitwise(t *testing.T) {
	for _, n := range []int{4, 16, 53, 64, 100} {
		for _, tile := range []int{0, 8, 16} {
			ref := make([]float64, n*n)
			opt := make([]float64, n*n)
			A := make([]float64, n*n)
			B := make([]float64, n*n)
			Fill(A, n, 1.0)
			Fill(B, n, 2.0)
			TiledTransposedRef(ref, append([]float64(nil), A...), B, n, tile)
			TiledTransposed(opt, A, B, n, tile)
			for k := range ref {
				if ref[k] != opt[k] {
					t.Fatalf("n=%d tile=%d: C[%d] = %v, ref %v",
						n, tile, k, opt[k], ref[k])
				}
			}
		}
	}
}

// TestTiledTransposedNearReference bounds the tile-reassociation error
// against the naive triple loop on remainder-heavy geometries.
func TestTiledTransposedNearReference(t *testing.T) {
	for _, n := range []int{5, 53, 64} {
		ref := make([]float64, n*n)
		opt := make([]float64, n*n)
		A := make([]float64, n*n)
		B := make([]float64, n*n)
		Fill(A, n, 1.0)
		Fill(B, n, 2.0)
		Reference(ref, append([]float64(nil), A...), B, n)
		TiledTransposed(opt, A, B, n, 16)
		for k := range ref {
			rel := math.Abs(opt[k]-ref[k]) / math.Max(1, math.Abs(ref[k]))
			if rel > 1e-9 {
				t.Fatalf("n=%d: C[%d] = %v, reference %v (rel %v)",
					n, k, opt[k], ref[k], rel)
			}
		}
	}
}

// TestThreadedParallelMatchesSerial drives Threaded through the parallel
// fork path and requires a bit-identical product and identical bin
// statistics versus the serial scheduler.
func TestThreadedParallelMatchesSerial(t *testing.T) {
	const n = 96
	serial := make([]float64, n*n)
	A := make([]float64, n*n)
	B := make([]float64, n*n)
	Fill(A, n, 1.0)
	Fill(B, n, 2.0)
	ss := ThreadedScheduler(1 << 16)
	Threaded(serial, append([]float64(nil), A...), B, n, ss)
	want := ss.LastRun()

	for _, w := range []int{1, 2, 4} {
		par := make([]float64, n*n)
		ps := ParallelScheduler(1<<16, w)
		Threaded(par, append([]float64(nil), A...), B, n, ps)
		got := ps.LastRun()
		ps.Close()
		for k := range serial {
			if serial[k] != par[k] {
				t.Fatalf("workers=%d: C[%d] = %v, serial %v", w, k, par[k], serial[k])
			}
		}
		if got.Threads != want.Threads || got.Bins != want.Bins {
			t.Fatalf("workers=%d: stats %+v, serial %+v", w, got, want)
		}
	}
}
