package matmul

import (
	"fmt"
	"testing"
)

const benchN = 256

func benchMatrices(n int) (C, A, B []float64) {
	C = make([]float64, n*n)
	A = make([]float64, n*n)
	B = make([]float64, n*n)
	Fill(A, n, 1.0)
	Fill(B, n, 2.0)
	return
}

func reportGFLOPS(b *testing.B, n int) {
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkTiledTransposedRef is the pre-optimization 3×3 kernel baseline.
func BenchmarkTiledTransposedRef(b *testing.B) {
	C, A, B2 := benchMatrices(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TiledTransposedRef(C, A, B2, benchN, 0)
	}
	reportGFLOPS(b, benchN)
}

// BenchmarkTiledTransposed is the optimized 4×4 micro-kernel.
func BenchmarkTiledTransposed(b *testing.B) {
	C, A, B2 := benchMatrices(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TiledTransposed(C, A, B2, benchN, 0)
	}
	reportGFLOPS(b, benchN)
}

// BenchmarkThreaded measures the threaded variant serial and through the
// parallel scheduler at 1/2/4 workers.
func BenchmarkThreaded(b *testing.B) {
	C, A, B2 := benchMatrices(benchN)
	const l2 = 2 << 20
	b.Run("serial", func(b *testing.B) {
		sched := ThreadedScheduler(l2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Threaded(C, A, B2, benchN, sched)
		}
		reportGFLOPS(b, benchN)
	})
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel-w%d", w), func(b *testing.B) {
			sched := ParallelScheduler(l2, w)
			defer sched.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Threaded(C, A, B2, benchN, sched)
			}
			reportGFLOPS(b, benchN)
		})
	}
}
