package matmul

import (
	"threadsched/internal/core"
	"threadsched/internal/sim"
	"threadsched/internal/vm"
)

// Traced is the instrumented matrix-multiply workload: the same five
// variants as the native API, run against simulated memory so every load,
// store, and instruction reaches the attached recorder. The per-iteration
// instruction budgets follow §4.2's disassembly discussion: 10
// instructions per 2 multiply-adds for the untiled interchanged inner
// loop, 18 per 9 for the register-blocked tiled kernel, and 14 per 4 for
// the transposed/threaded dot product.
type Traced struct {
	CPU     *sim.CPU
	N       int
	A, B, C *sim.Matrix
}

// Instruction-budget constants from the paper's inner-loop analysis.
const (
	interchangedUnroll = 2
	interchangedInstr  = 10
	dotUnroll          = 4
	dotInstr           = 14
	regTileInstr       = 18
	transposeInstr     = 8 // per element pair swapped
	loopOverheadInstr  = 4 // per middle-loop iteration
)

// Simulated text offsets for the distinct inner loops, so instruction
// fetches from different kernels occupy distinct I-cache lines.
const (
	pcInterchanged = 0x100
	pcDot          = 0x200
	pcRegTile      = 0x300
	pcTranspose    = 0x400
	pcOuter        = 0x500
	pcZero         = 0x600
)

// NewTraced allocates and fills the three matrices in simulated memory.
// The address space is shared so experiments can co-locate other state
// (e.g. the traced scheduler arena).
func NewTraced(cpu *sim.CPU, as *vm.AddressSpace, n int) *Traced {
	t := &Traced{
		CPU: cpu,
		N:   n,
		A:   sim.NewMatrix(cpu, as, n, n, true),
		B:   sim.NewMatrix(cpu, as, n, n, true),
		C:   sim.NewMatrix(cpu, as, n, n, true),
	}
	Fill(t.A.Data(), n, 1.0)
	Fill(t.B.Data(), n, 2.0)
	return t
}

// zeroC models the C-initialization sweep.
func (t *Traced) zeroC() {
	n := t.N
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			t.CPU.Exec(pcZero, 2)
			t.C.Store(i, j, 0)
		}
	}
}

// transposeA models the in-place transpose of A (2 loads, 2 stores, and
// transposeInstr instructions per swapped pair).
func (t *Traced) transposeA() {
	n := t.N
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			t.CPU.Exec(pcTranspose, transposeInstr)
			a := t.A.Load(i, j)
			b := t.A.Load(j, i)
			t.A.Store(i, j, b)
			t.A.Store(j, i, a)
		}
	}
}

// Interchanged runs the untiled j,k,i nest: B[k,j] in a register, two
// loads and a store per multiply-add.
func (t *Traced) Interchanged() {
	n := t.N
	t.zeroC()
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			t.CPU.Exec(pcOuter, loopOverheadInstr)
			b := t.B.Load(k, j)
			for i := 0; i < n; i += interchangedUnroll {
				t.CPU.Exec(pcInterchanged, interchangedInstr)
				for u := i; u < i+interchangedUnroll && u < n; u++ {
					c := t.C.Load(u, j)
					t.C.Store(u, j, c+t.A.Load(u, k)*b)
				}
			}
		}
	}
}

// dot computes the transposed-algorithm dot product of Aᵀ column i (i.e.
// row i of the already-transposed A) and B column j, storing into C[i,j]:
// two loads per multiply-add, the accumulator and store in registers.
func (t *Traced) dot(i, j int) {
	n := t.N
	var sum float64
	for k := 0; k < n; k += dotUnroll {
		t.CPU.Exec(pcDot, dotInstr)
		for u := k; u < k+dotUnroll && u < n; u++ {
			sum += t.A.Load(u, i) * t.B.Load(u, j)
		}
	}
	t.C.Store(i, j, sum)
}

// Transposed runs the transposed variant: transpose A, dot products, and
// transpose back — both transposes charged, as in the paper's timings.
func (t *Traced) Transposed() {
	n := t.N
	t.transposeA()
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			t.CPU.Exec(pcOuter, loopOverheadInstr)
			t.dot(i, j)
		}
	}
	t.transposeA()
}

// TiledInterchanged runs the cache-tiled interchanged nest with 3×3
// register blocking, the stand-in for the compiler-tiled version the
// paper's Table 3 simulates. Tile 0 selects DefaultTile.
func (t *Traced) TiledInterchanged(tile int) {
	if tile <= 0 {
		tile = DefaultTile
	}
	n := t.N
	t.zeroC()
	for kk := 0; kk < n; kk += tile {
		kend := min(kk+tile, n)
		for jj := 0; jj < n; jj += tile {
			jend := min(jj+tile, n)
			for ii := 0; ii < n; ii += tile {
				iend := min(ii+tile, n)
				t.regKernel(ii, iend, jj, jend, kk, kend, false)
			}
		}
	}
}

// TiledTransposed runs the cache-tiled transposed variant (transposes
// charged) with the same register-blocked kernel reading Aᵀ.
func (t *Traced) TiledTransposed(tile int) {
	if tile <= 0 {
		tile = DefaultTile
	}
	n := t.N
	t.transposeA()
	t.zeroC()
	for kk := 0; kk < n; kk += tile {
		kend := min(kk+tile, n)
		for jj := 0; jj < n; jj += tile {
			jend := min(jj+tile, n)
			for ii := 0; ii < n; ii += tile {
				iend := min(ii+tile, n)
				t.regKernel(ii, iend, jj, jend, kk, kend, true)
			}
		}
	}
	t.transposeA()
}

// loadA reads A[i,k] (or Aᵀ's (k,i) element when transposed, which is the
// same storage cell as row-i-of-A after transposeA has run).
func (t *Traced) loadA(i, k int, transposed bool) float64 {
	if transposed {
		return t.A.Load(k, i)
	}
	return t.A.Load(i, k)
}

// regKernel is the register-blocked tile kernel: RegisterBlock² (=9)
// accumulators live across the k loop, 2·RegisterBlock (=6) loads per
// regTileInstr (=18) instructions, C written once per tile edge.
func (t *Traced) regKernel(ii, iend, jj, jend, kk, kend int, transposed bool) {
	i := ii
	for ; i < iend; i += RegisterBlock {
		ilim := min(i+RegisterBlock, iend)
		j := jj
		for ; j < jend; j += RegisterBlock {
			jlim := min(j+RegisterBlock, jend)
			t.CPU.Exec(pcOuter, loopOverheadInstr)
			var acc [RegisterBlock][RegisterBlock]float64
			for k := kk; k < kend; k++ {
				t.CPU.Exec(pcRegTile, regTileInstr)
				var av, bv [RegisterBlock]float64
				for di := i; di < ilim; di++ {
					av[di-i] = t.loadA(di, k, transposed)
				}
				for dj := j; dj < jlim; dj++ {
					bv[dj-j] = t.B.Load(k, dj)
				}
				for di := 0; di < ilim-i; di++ {
					for dj := 0; dj < jlim-j; dj++ {
						acc[di][dj] += av[di] * bv[dj]
					}
				}
			}
			for di := i; di < ilim; di++ {
				for dj := j; dj < jlim; dj++ {
					c := t.C.Load(di, dj)
					t.C.Store(di, dj, c+acc[di-i][dj-j])
				}
			}
		}
	}
}

// Threaded runs the paper's threaded variant: transpose A, fork one
// thread per dot product through the traced scheduler wrapper with the
// two column base addresses as hints, run, transpose back.
func (t *Traced) Threaded(th *sim.Threads) {
	n := t.N
	t.transposeA()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			th.Fork(func(i, j int) { t.dot(i, j) }, i, j,
				t.A.Addr(0, i), t.B.Addr(0, j), 0)
		}
	}
	th.Run(false)
	t.transposeA()
}

// ThreadedEach is Threaded with a per-bin hook forwarded to the
// scheduler (see core.Scheduler.RunEach); the harness uses it to measure
// per-bin working sets and to dispatch bins across simulated processors.
func (t *Traced) ThreadedEach(th *sim.Threads, beforeBin func(bin, threads int)) {
	n := t.N
	t.transposeA()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			th.Fork(func(i, j int) { t.dot(i, j) }, i, j,
				t.A.Addr(0, i), t.B.Addr(0, j), 0)
		}
	}
	th.RunEach(false, beforeBin)
	t.transposeA()
}

// ThreadedScheduler builds the scheduler configuration the paper used for
// matmul: two-dimensional hints with the block size set to half the
// second-level cache size (§4.2).
func ThreadedScheduler(l2Size uint64) *core.Scheduler {
	return core.New(core.Config{CacheSize: l2Size, BlockSize: l2Size / 2})
}

// ParallelScheduler is ThreadedScheduler's multicore counterpart: the same
// binning plus sharded concurrent fork and the segmented parallel run
// across workers. Close it to release the worker pool.
func ParallelScheduler(l2Size uint64, workers int) *core.Scheduler {
	return core.New(core.Config{
		CacheSize:    l2Size,
		BlockSize:    l2Size / 2,
		Workers:      workers,
		Dispatch:     core.DispatchSegmented,
		ParallelFork: true,
	})
}
