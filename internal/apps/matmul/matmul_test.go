package matmul

import (
	"math"
	"testing"

	"threadsched/internal/cache"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

const testN = 48

func newInputs(n int) (A, B, C, want []float64) {
	A = make([]float64, n*n)
	B = make([]float64, n*n)
	C = make([]float64, n*n)
	want = make([]float64, n*n)
	Fill(A, n, 1.0)
	Fill(B, n, 2.0)
	Reference(want, A, B, n)
	return
}

func maxRelErr(got, want []float64) float64 {
	var worst float64
	for i := range got {
		denom := math.Abs(want[i])
		if denom < 1 {
			denom = 1
		}
		if e := math.Abs(got[i]-want[i]) / denom; e > worst {
			worst = e
		}
	}
	return worst
}

func TestNativeVariantsMatchReference(t *testing.T) {
	variants := map[string]func(C, A, B []float64, n int){
		"interchanged": Interchanged,
		"transposed":   Transposed,
		"tiledInter":   func(C, A, B []float64, n int) { TiledInterchanged(C, A, B, n, 16) },
		"tiledTrans":   func(C, A, B []float64, n int) { TiledTransposed(C, A, B, n, 16) },
		"threaded": func(C, A, B []float64, n int) {
			Threaded(C, A, B, n, ThreadedScheduler(1<<16))
		},
	}
	for name, fn := range variants {
		A, B, C, want := newInputs(testN)
		fn(C, A, B, testN)
		if err := maxRelErr(C, want); err > 1e-12 {
			t.Errorf("%s: max relative error %g", name, err)
		}
	}
}

func TestNativeVariantsOddSizes(t *testing.T) {
	// Sizes not divisible by tile or register block exercise remainders.
	for _, n := range []int{1, 2, 3, 5, 17, 31} {
		A, B, C, want := newInputs(n)
		TiledTransposed(C, A, B, n, 7)
		if err := maxRelErr(C, want); err > 1e-12 {
			t.Errorf("n=%d tiledTrans: err %g", n, err)
		}
		TiledInterchanged(C, A, B, n, 7)
		if err := maxRelErr(C, want); err > 1e-12 {
			t.Errorf("n=%d tiledInter: err %g", n, err)
		}
	}
}

func TestTransposeRestoresA(t *testing.T) {
	n := 13
	A := make([]float64, n*n)
	Fill(A, n, 3.0)
	orig := append([]float64(nil), A...)
	B := make([]float64, n*n)
	C := make([]float64, n*n)
	Fill(B, n, 1.5)
	Transposed(C, A, B, n)
	for i := range A {
		if A[i] != orig[i] {
			t.Fatalf("A[%d] changed: %v -> %v", i, orig[i], A[i])
		}
	}
	Threaded(C, A, B, n, ThreadedScheduler(1<<16))
	for i := range A {
		if A[i] != orig[i] {
			t.Fatalf("threaded changed A[%d]", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	n := 9
	m := make([]float64, n*n)
	Fill(m, n, 0.25)
	orig := append([]float64(nil), m...)
	Transpose(m, n)
	if m[Idx(n, 2, 5)] != orig[Idx(n, 5, 2)] {
		t.Fatal("transpose did not swap (2,5)")
	}
	Transpose(m, n)
	for i := range m {
		if m[i] != orig[i] {
			t.Fatal("double transpose is not the identity")
		}
	}
}

func TestThreadedBinGeometry(t *testing.T) {
	// With block size = C/2 and both matrices spanning 4 blocks per
	// dimension, threads must land in ~(4..5)² bins, uniformly.
	n := 64
	cacheSize := uint64(n * n * 8 / 2) // each matrix = 2 cache sizes = 4 blocks
	s := ThreadedScheduler(cacheSize)
	A, B, C, _ := newInputs(n)
	Threaded(C, A, B, n, s)
	st := s.Stats()
	if st.TotalForked != uint64(n*n) {
		t.Fatalf("forked %d threads, want %d", st.TotalForked, n*n)
	}
	if st.TotalRun != st.TotalForked {
		t.Fatalf("ran %d of %d threads", st.TotalRun, st.TotalForked)
	}
}

func TestTracedVariantsMatchReference(t *testing.T) {
	_, _, _, want := newInputs(testN)
	mk := func() *Traced {
		cpu := sim.NewCPU(trace.Discard)
		return NewTraced(cpu, vm.NewAddressSpace(), testN)
	}
	check := func(name string, tr *Traced) {
		t.Helper()
		if err := maxRelErr(tr.C.Data(), want); err > 1e-12 {
			t.Errorf("%s: max relative error %g", name, err)
		}
		if tr.CPU.Instructions == 0 {
			t.Errorf("%s: no instructions recorded", name)
		}
	}

	tr := mk()
	tr.Interchanged()
	check("interchanged", tr)

	tr = mk()
	tr.Transposed()
	check("transposed", tr)

	tr = mk()
	tr.TiledInterchanged(16)
	check("tiledInter", tr)

	tr = mk()
	tr.TiledTransposed(16)
	check("tiledTrans", tr)

	cpu := sim.NewCPU(trace.Discard)
	as := vm.NewAddressSpace()
	tr = NewTraced(cpu, as, testN)
	th := sim.NewThreads(cpu, as, ThreadedScheduler(1<<16))
	tr.Threaded(th)
	check("threaded", tr)
}

func TestTracedTransposedRestoresA(t *testing.T) {
	cpu := sim.NewCPU(trace.Discard)
	tr := NewTraced(cpu, vm.NewAddressSpace(), 12)
	orig := append([]float64(nil), tr.A.Data()...)
	tr.Transposed()
	for i, v := range tr.A.Data() {
		if v != orig[i] {
			t.Fatalf("A[%d] changed", i)
		}
	}
}

func TestTracedInterchangedReferenceCounts(t *testing.T) {
	n := 16
	var counts trace.Counts
	cpu := sim.NewCPU(&counts)
	tr := NewTraced(cpu, vm.NewAddressSpace(), n)
	tr.Interchanged()
	n3 := uint64(n * n * n)
	n2 := uint64(n * n)
	// Inner loop: 2 loads + 1 store per multiply-add; plus the zeroing
	// stores and the middle-loop B loads.
	wantLoads := 2*n3 + n2
	wantStores := n3 + n2
	if counts.Loads() != wantLoads {
		t.Errorf("loads = %d, want %d", counts.Loads(), wantLoads)
	}
	if counts.Stores() != wantStores {
		t.Errorf("stores = %d, want %d", counts.Stores(), wantStores)
	}
	// Instructions: 10 per 2 multiply-adds inner + 4 per middle + 2 per
	// zeroed element.
	wantInstr := 10*n3/2 + 4*n2 + 2*n2
	if cpu.Instructions != wantInstr {
		t.Errorf("instructions = %d, want %d", cpu.Instructions, wantInstr)
	}
}

func TestTracedDotReferenceCounts(t *testing.T) {
	n := 16
	var counts trace.Counts
	cpu := sim.NewCPU(&counts)
	tr := NewTraced(cpu, vm.NewAddressSpace(), n)
	tr.dot(3, 5)
	if got := counts.Loads(); got != uint64(2*n) {
		t.Errorf("dot loads = %d, want %d", got, 2*n)
	}
	if got := counts.Stores(); got != 1 {
		t.Errorf("dot stores = %d, want 1", got)
	}
}

// Shape test for the headline result: at scaled geometry, the threaded
// version must eliminate the bulk of the untiled version's L2 capacity
// misses, and the tiled version must beat both on total references.
func TestThreadedCutsL2CapacityMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled cache simulation")
	}
	n := 96 // 3 matrices × 72 KB each ≫ scaled 32 KB L2
	mach := machine.R8000().Scaled(64)

	run := func(f func(tr *Traced, th *sim.Threads)) cache.Summary {
		h := cache.MustNewHierarchy(mach.Caches, nil)
		cpu := sim.NewCPU(h)
		as := vm.NewAddressSpace()
		tr := NewTraced(cpu, as, n)
		th := sim.NewThreads(cpu, as, ThreadedScheduler(mach.L2CacheSize()))
		f(tr, th)
		return h.Summarize()
	}

	untiled := run(func(tr *Traced, _ *sim.Threads) { tr.Interchanged() })
	threaded := run(func(tr *Traced, th *sim.Threads) { tr.Threaded(th) })
	tiled := run(func(tr *Traced, _ *sim.Threads) {
		tr.TiledInterchanged(TileFor(mach.L2CacheSize()))
	})

	if untiled.L2.Capacity == 0 {
		t.Fatal("untiled run shows no L2 capacity misses; scaling is wrong")
	}
	if threaded.L2.Capacity*5 > untiled.L2.Capacity {
		t.Errorf("threaded L2 capacity misses %d not ≪ untiled %d",
			threaded.L2.Capacity, untiled.L2.Capacity)
	}
	if tiled.L2.Misses*5 > untiled.L2.Misses {
		t.Errorf("tiled L2 misses %d not ≪ untiled %d", tiled.L2.Misses, untiled.L2.Misses)
	}
	// §4.2: the threaded version reduces I and D references vs untiled
	// (transposed inner loop), and tiled reduces them further.
	if threaded.DataRefs >= untiled.DataRefs {
		t.Errorf("threaded data refs %d not < untiled %d", threaded.DataRefs, untiled.DataRefs)
	}
	if tiled.DataRefs >= threaded.DataRefs {
		t.Errorf("tiled data refs %d not < threaded %d", tiled.DataRefs, threaded.DataRefs)
	}
}

func TestThreadedSchedulerConfig(t *testing.T) {
	s := ThreadedScheduler(2 << 20)
	if s.BlockSize() != 1<<20 {
		t.Errorf("block size = %d, want 1M", s.BlockSize())
	}
}

func TestIdx(t *testing.T) {
	if Idx(10, 3, 4) != 43 {
		t.Errorf("Idx(10,3,4) = %d, want 43 (column-major)", Idx(10, 3, 4))
	}
}

func BenchmarkNativeInterchanged(b *testing.B) {
	n := 128
	A, B2, C, _ := newInputs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Interchanged(C, A, B2, n)
	}
}

func BenchmarkNativeThreaded(b *testing.B) {
	n := 128
	A, B2, C, _ := newInputs(n)
	s := ThreadedScheduler(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Threaded(C, A, B2, n, s)
	}
}
