// Package matmul implements the paper's §4.2 workload: n×n matrix multiply
// C = A·B over column-major float64 matrices (the Fortran layout the paper
// uses), in all five evaluated variants:
//
//   - Interchanged: the loop-interchanged j,k,i nest, B[k,j] registered —
//     the paper's best untiled baseline.
//   - Transposed: A transposed before and after, dot products over two
//     sequentially stored vectors, C[i,j] registered.
//   - Tiled interchanged / tiled transposed: blocked versions standing in
//     for the KAP/SGI compiler tilings, with register blocking.
//   - Threaded: the transposed algorithm with the inner dot-product loop
//     replaced by a fine-grained thread per (i,j), hinted with the column
//     addresses of Aᵀ and B (§2.1, §4.2).
//
// Each variant exists in a native form (plain slices, for wall-clock
// benchmarking on the host) and a traced form (instrumented against
// internal/sim, for cache simulation).
package matmul

// Idx returns the column-major index of element (i, j) of an n×n matrix.
func Idx(n, i, j int) int { return j*n + i }

// Fill initializes an n×n column-major matrix with a deterministic,
// non-degenerate pattern.
func Fill(m []float64, n int, seed float64) {
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			m[Idx(n, i, j)] = seed + float64(i%13) - float64(j%7)*0.5
		}
	}
}

// Reference computes C = A·B with the textbook triple loop; used by tests
// as the independent oracle.
func Reference(C, A, B []float64, n int) {
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += A[Idx(n, i, k)] * B[Idx(n, k, j)]
			}
			C[Idx(n, i, j)] = sum
		}
	}
}

// DefaultTile is the cache tile edge used by the tiled variants when the
// caller passes 0; sized so a 3-matrix tile working set fits a scaled L2.
const DefaultTile = 64

// TileFor returns a cache tile edge for an L2 of the given byte size: the
// largest power of two such that three tile²×8-byte blocks fit in half the
// cache, leaving room for streaming traffic. Minimum RegisterBlock.
func TileFor(l2Size uint64) int {
	tile := 1
	for uint64(3*(tile*2)*(tile*2)*8) <= l2Size/2 {
		tile *= 2
	}
	if tile < RegisterBlock {
		tile = RegisterBlock
	}
	return tile
}

// RegisterBlock is the register-tile edge used by the tiled variants'
// innermost kernel; 3×3 gives the paper's 9 multiply-adds per 6 loads
// (§4.2's discussion of the KAP inner loop).
const RegisterBlock = 3
