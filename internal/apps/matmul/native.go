package matmul

import (
	"sync"

	"threadsched/internal/core"
)

// Interchanged computes C = A·B with the j,k,i loop order (column-major
// storage), lifting B[k,j] into a register in the middle loop. This is the
// paper's untiled baseline ("the most common sequential method", §4.2).
func Interchanged(C, A, B []float64, n int) {
	for i := range C {
		C[i] = 0
	}
	for j := 0; j < n; j++ {
		cj := C[j*n : (j+1)*n]
		for k := 0; k < n; k++ {
			b := B[Idx(n, k, j)]
			ak := A[k*n : (k+1)*n]
			for i := 0; i < n; i++ {
				cj[i] += ak[i] * b
			}
		}
	}
}

// Transpose transposes the n×n column-major matrix m in place.
func Transpose(m []float64, n int) {
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			m[Idx(n, i, j)], m[Idx(n, j, i)] = m[Idx(n, j, i)], m[Idx(n, i, j)]
		}
	}
}

// Transposed computes C = A·B by transposing A before and after the
// computation so the dot-product inner loop accesses two sequentially
// stored vectors, with C[i,j] held in a register (§4.2). A is restored
// before returning.
func Transposed(C, A, B []float64, n int) {
	Transpose(A, n)
	for j := 0; j < n; j++ {
		bj := B[j*n : (j+1)*n]
		for i := 0; i < n; i++ {
			ai := A[i*n : (i+1)*n] // column i of Aᵀ = row i of A
			var sum float64
			for k := 0; k < n; k++ {
				sum += ai[k] * bj[k]
			}
			C[Idx(n, i, j)] = sum
		}
	}
	Transpose(A, n)
}

// TiledInterchanged computes C = A·B with the interchanged nest blocked
// for the cache (tile edge `tile`, 0 for DefaultTile) — the stand-in for
// the KAP/SGI compiler tiling of the interchanged version.
func TiledInterchanged(C, A, B []float64, n, tile int) {
	if tile <= 0 {
		tile = DefaultTile
	}
	for i := range C {
		C[i] = 0
	}
	for kk := 0; kk < n; kk += tile {
		kend := min(kk+tile, n)
		for jj := 0; jj < n; jj += tile {
			jend := min(jj+tile, n)
			for j := jj; j < jend; j++ {
				cj := C[j*n : (j+1)*n]
				for k := kk; k < kend; k++ {
					b := B[Idx(n, k, j)]
					ak := A[k*n : (k+1)*n]
					for i := 0; i < n; i++ {
						cj[i] += ak[i] * b
					}
				}
			}
		}
	}
}

// MicroBlock is the micro-tile edge of the optimized kernel: 4×4 output
// blocks, computed as two register-resident 4×2 half-blocks at six loads
// per eight multiply-adds (the 3×3 reference kernel needs six per nine
// but pays a bounds check on every load).
const MicroBlock = 4

// TiledTransposed computes C = A·B on the transposed algorithm with cache
// tiling over (i, j, k) and a register-blocked 4×4 micro-kernel,
// restoring A before returning. Every C element accumulates its k partial
// products in the same order as the 3×3 reference kernel, so results are
// bit-identical to TiledTransposedRef (and, like it, within rounding of
// Reference — the per-tile partial sums reassociate the flat dot
// product).
func TiledTransposed(C, A, B []float64, n, tile int) {
	if tile <= 0 {
		tile = DefaultTile
	}
	Transpose(A, n)
	for i := range C {
		C[i] = 0
	}
	for kk := 0; kk < n; kk += tile {
		kend := min(kk+tile, n)
		for jj := 0; jj < n; jj += tile {
			jend := min(jj+tile, n)
			for ii := 0; ii < n; ii += tile {
				iend := min(ii+tile, n)
				tiledTransposedKernel(C, A, B, n, ii, iend, jj, jend, kk, kend)
			}
		}
	}
	Transpose(A, n)
}

// tiledTransposedKernel multiplies one tile on 4×4 micro-blocks, each
// computed as two register-resident 4×2 half-blocks: eight accumulators
// plus six streamed operands fit the sixteen vector registers (sixteen
// live accumulators would spill on every iteration), and the slices are
// cut to the exact k extent and length-matched so the compiler proves
// every indexed load in range and drops the bounds checks.
func tiledTransposedKernel(C, At, B []float64, n, ii, iend, jj, jend, kk, kend int) {
	i := ii
	for ; i+MicroBlock <= iend; i += MicroBlock {
		a0 := At[(i+0)*n+kk : (i+0)*n+kend]
		a1 := At[(i+1)*n+kk : (i+1)*n+kend]
		a1 = a1[:len(a0)]
		a2 := At[(i+2)*n+kk : (i+2)*n+kend]
		a2 = a2[:len(a0)]
		a3 := At[(i+3)*n+kk : (i+3)*n+kend]
		a3 = a3[:len(a0)]
		j := jj
		for ; j+2 <= jend; j += 2 {
			b0 := B[(j+0)*n+kk : (j+0)*n+kend]
			b0 = b0[:len(a0)]
			b1 := B[(j+1)*n+kk : (j+1)*n+kend]
			b1 = b1[:len(a0)]
			var c00, c01, c10, c11, c20, c21, c30, c31 float64
			for k := range a0 {
				av0, av1, av2, av3 := a0[k], a1[k], a2[k], a3[k]
				bv0, bv1 := b0[k], b1[k]
				c00 += av0 * bv0
				c01 += av0 * bv1
				c10 += av1 * bv0
				c11 += av1 * bv1
				c20 += av2 * bv0
				c21 += av2 * bv1
				c30 += av3 * bv0
				c31 += av3 * bv1
			}
			C[Idx(n, i+0, j+0)] += c00
			C[Idx(n, i+0, j+1)] += c01
			C[Idx(n, i+1, j+0)] += c10
			C[Idx(n, i+1, j+1)] += c11
			C[Idx(n, i+2, j+0)] += c20
			C[Idx(n, i+2, j+1)] += c21
			C[Idx(n, i+3, j+0)] += c30
			C[Idx(n, i+3, j+1)] += c31
		}
		// Remainder column of this row block.
		for ; j < jend; j++ {
			b0 := B[j*n+kk : j*n+kend]
			b0 = b0[:len(a0)]
			var c0, c1, c2, c3 float64
			for k := range a0 {
				bv := b0[k]
				c0 += a0[k] * bv
				c1 += a1[k] * bv
				c2 += a2[k] * bv
				c3 += a3[k] * bv
			}
			C[Idx(n, i+0, j)] += c0
			C[Idx(n, i+1, j)] += c1
			C[Idx(n, i+2, j)] += c2
			C[Idx(n, i+3, j)] += c3
		}
	}
	// Remainder rows.
	for ; i < iend; i++ {
		ai := At[i*n : (i+1)*n]
		for j := jj; j < jend; j++ {
			bj := B[j*n : (j+1)*n]
			var sum float64
			for k := kk; k < kend; k++ {
				sum += ai[k] * bj[k]
			}
			C[Idx(n, i, j)] += sum
		}
	}
}

// TiledTransposedRef is the pre-optimization tiled transposed variant with
// the paper's 3×3 register blocking, kept as the differential-test oracle
// and speedup baseline for the 4×4 micro-kernel.
func TiledTransposedRef(C, A, B []float64, n, tile int) {
	if tile <= 0 {
		tile = DefaultTile
	}
	Transpose(A, n)
	for i := range C {
		C[i] = 0
	}
	for kk := 0; kk < n; kk += tile {
		kend := min(kk+tile, n)
		for jj := 0; jj < n; jj += tile {
			jend := min(jj+tile, n)
			for ii := 0; ii < n; ii += tile {
				iend := min(ii+tile, n)
				tiledTransposedKernelRef(C, A, B, n, ii, iend, jj, jend, kk, kend)
			}
		}
	}
	Transpose(A, n)
}

// tiledTransposedKernelRef multiplies one tile with 3×3 register blocking:
// nine accumulators held across the k loop, six loads per nine
// multiply-adds, stores only at tile edges — the instruction/reference
// shape §4.2 attributes to the KAP-tiled inner loop.
func tiledTransposedKernelRef(C, At, B []float64, n, ii, iend, jj, jend, kk, kend int) {
	i := ii
	for ; i+RegisterBlock <= iend; i += RegisterBlock {
		j := jj
		for ; j+RegisterBlock <= jend; j += RegisterBlock {
			var c00, c01, c02, c10, c11, c12, c20, c21, c22 float64
			a0 := At[(i+0)*n : (i+1)*n]
			a1 := At[(i+1)*n : (i+2)*n]
			a2 := At[(i+2)*n : (i+3)*n]
			b0 := B[(j+0)*n : (j+1)*n]
			b1 := B[(j+1)*n : (j+2)*n]
			b2 := B[(j+2)*n : (j+3)*n]
			for k := kk; k < kend; k++ {
				av0, av1, av2 := a0[k], a1[k], a2[k]
				bv0, bv1, bv2 := b0[k], b1[k], b2[k]
				c00 += av0 * bv0
				c01 += av0 * bv1
				c02 += av0 * bv2
				c10 += av1 * bv0
				c11 += av1 * bv1
				c12 += av1 * bv2
				c20 += av2 * bv0
				c21 += av2 * bv1
				c22 += av2 * bv2
			}
			C[Idx(n, i+0, j+0)] += c00
			C[Idx(n, i+0, j+1)] += c01
			C[Idx(n, i+0, j+2)] += c02
			C[Idx(n, i+1, j+0)] += c10
			C[Idx(n, i+1, j+1)] += c11
			C[Idx(n, i+1, j+2)] += c12
			C[Idx(n, i+2, j+0)] += c20
			C[Idx(n, i+2, j+1)] += c21
			C[Idx(n, i+2, j+2)] += c22
		}
		// Remainder columns of this row block.
		for ; j < jend; j++ {
			for di := 0; di < RegisterBlock; di++ {
				var sum float64
				ai := At[(i+di)*n : (i+di+1)*n]
				bj := B[j*n : (j+1)*n]
				for k := kk; k < kend; k++ {
					sum += ai[k] * bj[k]
				}
				C[Idx(n, i+di, j)] += sum
			}
		}
	}
	// Remainder rows.
	for ; i < iend; i++ {
		ai := At[i*n : (i+1)*n]
		for j := jj; j < jend; j++ {
			bj := B[j*n : (j+1)*n]
			var sum float64
			for k := kk; k < kend; k++ {
				sum += ai[k] * bj[k]
			}
			C[Idx(n, i, j)] += sum
		}
	}
}

// Threaded computes C = A·B the paper's way (§2.1): A is transposed, one
// fine-grained thread per dot product is forked with the two column base
// addresses as hints, and the scheduler runs the threads bin by bin. The
// hint addresses are synthetic but preserve the layout of the real data,
// which is all the binning algorithm consumes. A is restored before
// returning.
// With a ParallelScheduler the fork loop itself is split across the
// worker count (the sharded fork path makes concurrent Fork safe) and Run
// drains the bins on the worker pool. Bin contents and RunStats depend
// only on the hints, not on fork order, so serial and parallel runs
// produce identical locality statistics.
func Threaded(C, A, B []float64, n int, sched *core.Scheduler) {
	Transpose(A, n)
	const aBase = 0x1000_0000
	bBase := aBase + uint64(n*n*8)
	// One closure for every thread: forking must stay allocation-free.
	dot := func(i, j int) {
		ai := A[i*n : (i+1)*n]
		bj := B[j*n : (j+1)*n]
		var sum float64
		for k := 0; k < n; k++ {
			sum += ai[k] * bj[k]
		}
		C[Idx(n, i, j)] = sum
	}
	forkRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				sched.Fork(dot, i, j, aBase+uint64(i*n*8), bBase+uint64(j*n*8), 0)
			}
		}
	}
	if forkers := parallelForkers(sched); forkers > 1 {
		var wg sync.WaitGroup
		chunk := (n + forkers - 1) / forkers
		for lo := 0; lo < n; lo += chunk {
			wg.Add(1)
			go func(lo int) {
				defer wg.Done()
				forkRows(lo, min(lo+chunk, n))
			}(lo)
		}
		wg.Wait()
	} else {
		forkRows(0, n)
	}
	sched.Run(false)
	Transpose(A, n)
}

// parallelForkers returns how many goroutines may fork into sched
// concurrently: its worker count when the sharded fork path is enabled,
// else one.
func parallelForkers(sched *core.Scheduler) int {
	if !sched.ConcurrentFork() {
		return 1
	}
	if w := sched.Workers(); w > 1 {
		return w
	}
	return 1
}
