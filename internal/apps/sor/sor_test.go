package sor

import (
	"math"
	"testing"

	"threadsched/internal/cache"
	"threadsched/internal/core"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

func TestHandTiledMatchesUntiledExactly(t *testing.T) {
	for _, n := range []int{5, 17, 40, 101} {
		for _, iters := range []int{1, 3, 7} {
			for _, s := range []int{1, 3, 18} {
				for _, tb := range []int{0, 2, 5} {
					a := NewArray(n)
					b := append([]float64(nil), a...)
					Untiled(a, n, iters)
					HandTiled(b, n, iters, s, tb)
					for k := range a {
						if a[k] != b[k] {
							t.Fatalf("n=%d t=%d s=%d tb=%d: a[%d] = %v, tiled %v",
								n, iters, s, tb, k, a[k], b[k])
						}
					}
				}
			}
		}
	}
}

func TestThreadedConvergesLikeUntiled(t *testing.T) {
	// Asynchronous relaxation: the threaded update order differs across
	// bin boundaries, so results are not bitwise comparable to Untiled.
	// The contract is convergence: after t sweeps in either order the
	// iterate must be much closer to the fixed point than the initial
	// state, and nearly stationary.
	n, iters := 101, 30
	fixed := NewArray(n)
	Untiled(fixed, n, 5000) // high-accuracy fixed point

	dist := func(x []float64) float64 {
		var worst float64
		for k := range x {
			if d := math.Abs(x[k] - fixed[k]); d > worst {
				worst = d
			}
		}
		return worst
	}

	init := NewArray(n)
	initErr := dist(init)

	u := NewArray(n)
	Untiled(u, n, iters)
	b := NewArray(n)
	Threaded(b, n, iters, ThreadedScheduler(1<<15))

	// The paper runs a fixed 30 sweeps and relies on the asynchronous
	// iteration converging; it trades convergence rate for locality, so
	// we assert progress toward the fixed point, not parity with the
	// untiled order.
	if eu := dist(u); eu > initErr/8 {
		t.Fatalf("untiled barely converged (%v of %v); test is miscalibrated", eu, initErr)
	}
	if e := dist(b); e > initErr/2 {
		t.Fatalf("threaded error %v did not shrink from initial %v", e, initErr)
	}
	// The averaging stencil is a contraction: the reordered schedule must
	// not amplify the iterate.
	var maxInit, maxB float64
	for k, v := range NewArray(n) {
		if math.Abs(v) > maxInit {
			maxInit = math.Abs(v)
		}
		if math.Abs(b[k]) > maxB {
			maxB = math.Abs(b[k])
		}
	}
	if maxB > maxInit {
		t.Fatalf("threaded iterate grew: %v > initial %v", maxB, maxInit)
	}
}

func TestThreadedExactMatchesUntiledBitwise(t *testing.T) {
	for _, n := range []int{8, 33, 101} {
		for _, iters := range []int{1, 4, 9} {
			a := NewArray(n)
			b := append([]float64(nil), a...)
			Untiled(a, n, iters)
			sched := core.NewDep(core.Config{CacheSize: 1 << 15, BlockSize: 1 << 14})
			if err := ThreadedExact(b, n, iters, sched); err != nil {
				t.Fatalf("n=%d t=%d: %v", n, iters, err)
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("n=%d t=%d: a[%d] = %v, exact-threaded %v",
						n, iters, k, a[k], b[k])
				}
			}
		}
	}
}

func TestTileParamsBranches(t *testing.T) {
	// Full-depth branch: plenty of budget.
	s, tb := TileParams(100, 10, 1<<20) // budget = 1310 columns
	if tb != 10 || s < 1 {
		t.Fatalf("full-depth params = (%d,%d)", s, tb)
	}
	// Blocked-time branch: budget too small for full depth.
	s, tb = TileParams(251, 10, 32<<10) // budget = 16 columns
	if s != 2 || tb != 10 {
		// budget-t-4 = 2 ≥ 1, so this is actually full depth with s=2.
		t.Fatalf("params = (%d,%d), want (2,10)", s, tb)
	}
	s, tb = TileParams(1000, 30, 32<<10) // budget = 4 columns < t
	if s != 1 || tb != 1 {
		t.Fatalf("tiny-budget params = (%d,%d), want (1,1)", s, tb)
	}
	s, tb = TileParams(500, 30, 64<<10) // budget = 16, not enough for t=30
	if s != 1 || tb != 12 {
		t.Fatalf("blocked-time params = (%d,%d), want (1,12)", s, tb)
	}
	// Whatever the parameters, correctness must hold.
	n, iters := 64, 7
	a := NewArray(n)
	b := append([]float64(nil), a...)
	Untiled(a, n, iters)
	s, tb = TileParams(n, iters, 8<<10)
	HandTiled(b, n, iters, s, tb)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("TileParams-driven tiling diverged at %d", k)
		}
	}
}

func TestThreadedThreadCount(t *testing.T) {
	n, iters := 51, 4
	s := ThreadedScheduler(1 << 15)
	a := NewArray(n)
	Threaded(a, n, iters, s)
	st := s.Stats()
	want := uint64(iters * (n - 2))
	if st.TotalForked != want {
		t.Fatalf("forked %d threads, want %d (t·(n−2))", st.TotalForked, want)
	}
	if st.TotalRun != want {
		t.Fatalf("ran %d threads, want %d", st.TotalRun, want)
	}
}

func TestBoundaryRowsColumnsUntouched(t *testing.T) {
	n := 21
	a := NewArray(n)
	orig := append([]float64(nil), a...)
	Untiled(a, n, 3)
	for i := 0; i < n; i++ {
		for _, k := range []int{i, (n-1)*n + i, i * n, i*n + n - 1} {
			if a[k] != orig[k] {
				t.Fatalf("boundary element %d changed", k)
			}
		}
	}
}

func TestSweepDeltaDecreases(t *testing.T) {
	n := 41
	a := NewArray(n)
	d0 := SweepDelta(a, n)
	Untiled(a, n, 20)
	d1 := SweepDelta(a, n)
	if d1 >= d0 {
		t.Fatalf("sweep delta did not decrease: %v -> %v", d0, d1)
	}
}

func TestTracedUntiledMatchesNative(t *testing.T) {
	n, iters := 33, 4
	want := NewArray(n)
	Untiled(want, n, iters)
	cpu := sim.NewCPU(trace.Discard)
	tr := NewTracedArray(cpu, vm.NewAddressSpace(), n)
	tr.Untiled(iters)
	for k, v := range tr.A.Data() {
		if v != want[k] {
			t.Fatalf("traced[%d] = %v, want %v", k, v, want[k])
		}
	}
}

func TestTracedHandTiledMatchesNative(t *testing.T) {
	n, iters := 33, 5
	want := NewArray(n)
	Untiled(want, n, iters)
	cpu := sim.NewCPU(trace.Discard)
	tr := NewTracedArray(cpu, vm.NewAddressSpace(), n)
	tr.HandTiled(iters, 6, 0)
	for k, v := range tr.A.Data() {
		if v != want[k] {
			t.Fatalf("traced tiled[%d] = %v, want %v", k, v, want[k])
		}
	}
}

func TestTracedThreadedMatchesNativeThreaded(t *testing.T) {
	// The traced and native threaded variants use the same relative
	// layout and scheduler configuration, so their (reordered) results
	// must agree exactly with each other.
	n, iters := 33, 4
	l2 := uint64(1 << 14)
	want := NewArray(n)
	Threaded(want, n, iters, ThreadedScheduler(l2))

	cpu := sim.NewCPU(trace.Discard)
	as := vm.NewAddressSpaceAt(0x1000_0000) // same base as the native hints
	tr := NewTracedArray(cpu, as, n)
	th := sim.NewThreads(cpu, as, ThreadedScheduler(l2))
	tr.Threaded(iters, th)
	for k, v := range tr.A.Data() {
		if v != want[k] {
			t.Fatalf("traced threaded[%d] = %v, native %v", k, v, want[k])
		}
	}
}

func TestTracedReferenceShape(t *testing.T) {
	n, iters := 17, 3
	var counts trace.Counts
	cpu := sim.NewCPU(&counts)
	tr := NewTracedArray(cpu, vm.NewAddressSpace(), n)
	tr.Untiled(iters)
	points := uint64(iters * (n - 2) * (n - 2))
	cols := uint64(iters * (n - 2))
	if got := counts.Stores(); got != points {
		t.Errorf("stores = %d, want %d", got, points)
	}
	if got := counts.Loads(); got != 4*points+cols {
		t.Errorf("loads = %d, want %d", got, 4*points+cols)
	}
	if cpu.Instructions != pointInstr*points+colInstr*cols {
		t.Errorf("instructions = %d, want %d", cpu.Instructions,
			pointInstr*points+colInstr*cols)
	}
}

// Shape test for Table 7: hand-tiled and threaded must remove almost all
// of the untiled version's L2 capacity misses.
func TestTilingAndThreadingRemoveCapacityMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled cache simulation")
	}
	// Array 16× the scaled 32 KB L2, as in the paper (32 MB vs 2 MB).
	n, iters := 251, 10
	mach := machine.R8000().Scaled(64)

	run := func(f func(tr *TracedArray, th *sim.Threads)) cache.Summary {
		h := cache.MustNewHierarchy(mach.Caches, nil)
		cpu := sim.NewCPU(h)
		as := vm.NewAddressSpace()
		tr := NewTracedArray(cpu, as, n)
		th := sim.NewThreads(cpu, as, ThreadedScheduler(mach.L2CacheSize()))
		f(tr, th)
		return h.Summarize()
	}

	untiled := run(func(tr *TracedArray, _ *sim.Threads) { tr.Untiled(iters) })
	s, tb := TileParams(n, iters, mach.L2CacheSize())
	tiled := run(func(tr *TracedArray, _ *sim.Threads) { tr.HandTiled(iters, s, tb) })
	threaded := run(func(tr *TracedArray, th *sim.Threads) { tr.Threaded(iters, th) })

	if untiled.L2.Capacity == 0 {
		t.Fatal("untiled run shows no capacity misses; scaling is wrong")
	}
	// Paper Table 7: hand-tiled and threaded both remove essentially all
	// capacity misses (7,294K → 0 and → 6K).
	if tiled.L2.Capacity*10 > untiled.L2.Capacity {
		t.Errorf("hand-tiled capacity misses %d not ≪ untiled %d",
			tiled.L2.Capacity, untiled.L2.Capacity)
	}
	if threaded.L2.Capacity*10 > untiled.L2.Capacity {
		t.Errorf("threaded capacity misses %d not ≪ untiled %d",
			threaded.L2.Capacity, untiled.L2.Capacity)
	}
	if threaded.L2.Misses*5 > untiled.L2.Misses {
		t.Errorf("threaded L2 misses %d not ≪ untiled %d",
			threaded.L2.Misses, untiled.L2.Misses)
	}
}

func BenchmarkNativeUntiled(b *testing.B) {
	n := 251
	a := NewArray(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Untiled(a, n, 5)
	}
}

func BenchmarkNativeThreaded(b *testing.B) {
	n := 251
	a := NewArray(n)
	s := ThreadedScheduler(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Threaded(a, n, 5, s)
	}
}
