package sor

import "testing"

// TestUntiledMatchesRefBitwise requires the pipelined column-pair sweep
// to be bit-identical to the pre-optimization sweep: the pair kernel
// interleaves two Gauss–Seidel chains without reordering any operand.
func TestUntiledMatchesRefBitwise(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 33, 101} {
		for _, iters := range []int{1, 4, 9} {
			ref := NewArray(n)
			opt := append([]float64(nil), ref...)
			UntiledRef(ref, n, iters)
			Untiled(opt, n, iters)
			for k := range ref {
				if ref[k] != opt[k] {
					t.Fatalf("n=%d t=%d: a[%d] = %v, ref %v",
						n, iters, k, opt[k], ref[k])
				}
			}
		}
	}
}

// TestThreadedExactParallelMatchesUntiled runs the dependence-exact
// variant through the parallel wavefront executor: any schedule
// respecting the (it,j−1) and (it−1,j+1) dependences is bit-for-bit the
// sequential sweep, at any worker count.
func TestThreadedExactParallelMatchesUntiled(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		sched := ParallelScheduler(1<<15, w)
		for _, n := range []int{8, 33, 101} {
			for _, iters := range []int{1, 4, 9} {
				a := NewArray(n)
				b := append([]float64(nil), a...)
				Untiled(a, n, iters)
				if err := ThreadedExact(b, n, iters, sched); err != nil {
					t.Fatalf("w=%d n=%d t=%d: %v", w, n, iters, err)
				}
				for k := range a {
					if a[k] != b[k] {
						t.Fatalf("w=%d n=%d t=%d: a[%d] = %v, parallel %v",
							w, n, iters, k, a[k], b[k])
					}
				}
			}
		}
		sched.Close()
	}
}
