package sor

import "threadsched/internal/core"

// Threaded runs t SOR sweeps with one fine-grained thread per
// (iteration, column), all forked before a single scheduler run — the
// paper's §4.3 structure:
//
//	for i1 = 1 to t
//	    for i3 = 1 to n-1
//	        th_fork(Compute, i3, 0, A(0,i3-1), A(n,i3+1), 0);
//	th_run(0);
//
// The hints are the addresses bounding the thread's three-column window,
// so threads touching the same columns — across all t iterations — share a
// bin and run consecutively while those columns are cache-resident. The
// resulting update order differs from Untiled across bin boundaries
// (asynchronous relaxation); convergence, not bitwise equality, is the
// contract.
func Threaded(a []float64, n, t int, sched *core.Scheduler) {
	const base = 0x1000_0000
	colBytes := uint64(n) * 8
	relax := func(j, _ int) { relaxColumn(a, n, j) }
	for it := 0; it < t; it++ {
		for j := 1; j < n-1; j++ {
			sched.Fork(relax, j, 0,
				base+uint64(j-1)*colBytes,
				base+uint64(j+2)*colBytes,
				0)
		}
	}
	sched.Run(false)
}

// ThreadedScheduler builds the scheduler configuration for the SOR
// workload: two window-bounding hints over one array, block size half the
// cache ("the hints can be fine tuned to keep as much of the array as
// possible in the cache", §4.3).
func ThreadedScheduler(l2Size uint64) *core.Scheduler {
	return core.New(core.Config{CacheSize: l2Size, BlockSize: l2Size / 2})
}

// ParallelScheduler is ThreadedScheduler's multicore counterpart for the
// dependence-exact variant: the same binning plus the parallel wavefront
// executor. Concurrently runnable threads of the SOR DAG are at least two
// columns apart (thread (it₂,j₂) transitively requires (it₁, j₂+(it₂−it₁))
// with it₁ < it₂, so a pending (it₁,j₁) has j₁ ≥ j₂+2), which keeps each
// thread's written column out of the other's three-column window — the
// parallel run is race-free and still bit-identical to Untiled. Close it
// to release the worker pool.
func ParallelScheduler(l2Size uint64, workers int) *core.DepScheduler {
	return core.NewDep(core.Config{CacheSize: l2Size, BlockSize: l2Size / 2, Workers: workers})
}

// ThreadedExact runs t SOR sweeps with fine-grained column threads under
// wavefront dependence constraints, using the dependence-aware scheduler
// (the §6 extension): thread (it, j) runs after (it, j−1) — which also
// protects the right neighbour's not-yet-updated value — and after
// (it−1, j+1). Any schedule respecting these constraints computes exactly
// the sequential sweep, so unlike Threaded this variant is bit-for-bit
// equal to Untiled while still executing bin by bin where the wavefront
// allows.
func ThreadedExact(a []float64, n, t int, sched *core.DepScheduler) error {
	const base = 0x1000_0000
	colBytes := uint64(n) * 8
	relax := func(j, _ int) { relaxColumn(a, n, j) }
	prev := make([]core.ThreadID, n) // ids of iteration it−1
	cur := make([]core.ThreadID, n)
	for it := 0; it < t; it++ {
		for j := 1; j < n-1; j++ {
			deps := make([]core.ThreadID, 0, 2)
			if j > 1 {
				deps = append(deps, cur[j-1])
			}
			if it > 0 && j+1 < n-1 {
				deps = append(deps, prev[j+1])
			}
			cur[j] = sched.Fork(relax, j, 0,
				base+uint64(j-1)*colBytes, base+uint64(j+2)*colBytes, 0, deps...)
		}
		prev, cur = cur, prev
	}
	return sched.Run()
}
