package sor

import (
	"fmt"
	"testing"
)

const (
	benchN = 501
	benchT = 10
	benchL = 2 << 20
)

func reportUpdates(b *testing.B, n, t int) {
	updates := float64(t) * float64(n-2) * float64(n-2)
	b.ReportMetric(updates*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mupdates/s")
}

// BenchmarkUntiledRef is the pre-optimization sweep baseline.
func BenchmarkUntiledRef(b *testing.B) {
	a := NewArray(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UntiledRef(a, benchN, benchT)
	}
	reportUpdates(b, benchN, benchT)
}

// BenchmarkUntiled is the optimized pipelined column-pair sweep.
func BenchmarkUntiled(b *testing.B) {
	a := NewArray(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Untiled(a, benchN, benchT)
	}
	reportUpdates(b, benchN, benchT)
}

// BenchmarkThreadedExact measures the dependence-exact variant through
// the wavefront executor at 1/2/4 workers.
func BenchmarkThreadedExact(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			a := NewArray(benchN)
			sched := ParallelScheduler(benchL, w)
			defer sched.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ThreadedExact(a, benchN, benchT, sched); err != nil {
					b.Fatal(err)
				}
			}
			reportUpdates(b, benchN, benchT)
		})
	}
}
