// Package sor implements the paper's §4.3 second workload: the SOR kernel
// from the compiler literature (Lam, Rothberg & Wolf) — t Jacobi-flavoured
// Gauss–Seidel sweeps of the five-point averaging stencil
//
//	A[i,j] = 0.2·(A[i,j] + A[i+1,j] + A[i−1,j] + A[i,j+1] + A[i,j−1])
//
// over an n×n column-major array (paper: n = 2005, t = 30, tile s = 18).
//
// Three variants, as evaluated in Tables 6 and 7:
//
//   - Untiled: t full sweeps in storage order (columns outer, rows inner —
//     the good loop order for column-major data); every sweep streams the
//     whole array through the cache.
//   - HandTiled: time-skewed column-strip tiling — each strip of s columns
//     advances through blocks of time steps while its working set stays
//     cached, the dependence-respecting blocked schedule of the kind the
//     paper's hand-tiled version (after Lam et al.) uses. Bit-for-bit
//     identical to Untiled.
//   - Threaded: one fine-grained thread per (iteration, column), all
//     t·(n−2) threads forked before a single run (§4.3's code forks inside
//     the time loop and calls th_run once). Binning clusters the same
//     columns across iterations, so each bin relaxes a strip of columns
//     through all t time steps while it is cache-resident. This reorders
//     updates across strip boundaries — legitimate for an asynchronous
//     iteration whose goal is convergence ("Although there are data
//     dependencies among threads, the algorithm works fine because the
//     goal is to reach convergence").
package sor

// NewArray allocates an n×n column-major array with a deterministic,
// boundary-inclusive initial state.
func NewArray(n int) []float64 {
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a[j*n+i] = float64((i*5+j*11)%17) - 8.0
		}
	}
	return a
}

// relaxColumn applies the stencil down interior column j, carrying the
// just-written col[i−1] in a register instead of reloading it through the
// store. Operand order matches relaxColumnRef exactly (Go's + is
// left-associative), so the result is bit-identical.
func relaxColumn(a []float64, n, j int) {
	col := a[j*n : (j+1)*n]
	left := a[(j-1)*n : j*n]
	right := a[(j+1)*n : (j+2)*n]
	prev := col[0]
	for i := 1; i < n-1; i++ {
		v := 0.2 * (col[i] + col[i+1] + prev + right[i] + left[i])
		col[i] = v
		prev = v
	}
}

// relaxColumnRef is the pre-optimization stencil kept as the
// differential-test oracle for relaxColumn and relaxColumnPair.
func relaxColumnRef(a []float64, n, j int) {
	col := a[j*n : (j+1)*n]
	left := a[(j-1)*n : j*n]
	right := a[(j+1)*n : (j+2)*n]
	for i := 1; i < n-1; i++ {
		col[i] = 0.2 * (col[i] + col[i+1] + col[i-1] + right[i] + left[i])
	}
}

// relaxColumnPair relaxes interior columns j and j+1 in one software-
// pipelined row sweep: at row i column j is relaxed at i and column j+1
// at i−1, so one pass streams four columns while updating two (half the
// memory traffic of two single-column sweeps) and the two Gauss–Seidel
// recurrences overlap instead of serializing on one dependence chain.
//
// Every value each update reads is the same one the sequential order
// (all of column j, then all of column j+1) reads: j+1's left neighbour
// at row i−1 was written at step i−1, and j's right neighbour at row i is
// untouched until step i+1. Operand order is preserved, so the sweep is
// bit-identical to relaxColumnRef on j then j+1. Requires n ≥ 4.
func relaxColumnPair(a []float64, n, j int) {
	c0 := a[j*n : (j+1)*n]
	c1 := a[(j+1)*n : (j+2)*n]
	l := a[(j-1)*n : j*n]
	r := a[(j+2)*n : (j+3)*n]
	p0 := c0[0]
	p1 := c1[0]
	v0 := 0.2 * (c0[1] + c0[2] + p0 + c1[1] + l[1])
	c0[1] = v0
	p0 = v0
	for i := 2; i < n-1; i++ {
		v0 = 0.2 * (c0[i] + c0[i+1] + p0 + c1[i] + l[i])
		c0[i] = v0
		p0 = v0
		v1 := 0.2 * (c1[i-1] + c1[i] + p1 + r[i-1] + c0[i-1])
		c1[i-1] = v1
		p1 = v1
	}
	v1 := 0.2 * (c1[n-2] + c1[n-1] + p1 + r[n-2] + c0[n-2])
	c1[n-2] = v1
}

// Untiled runs t sweeps in storage order, two columns per pass where the
// geometry allows; bit-identical to UntiledRef.
func Untiled(a []float64, n, t int) {
	if n < 4 {
		UntiledRef(a, n, t)
		return
	}
	for it := 0; it < t; it++ {
		j := 1
		for ; j+2 <= n-1; j += 2 {
			relaxColumnPair(a, n, j)
		}
		for ; j < n-1; j++ {
			relaxColumn(a, n, j)
		}
	}
}

// UntiledRef is the pre-optimization sweep (one column at a time, no
// carried register), kept as the differential-test oracle and speedup
// baseline.
func UntiledRef(a []float64, n, t int) {
	for it := 0; it < t; it++ {
		for j := 1; j < n-1; j++ {
			relaxColumnRef(a, n, j)
		}
	}
}

// DefaultStrip is the paper's tile size s = 18.
const DefaultStrip = 18

// HandTiled runs t sweeps with time-skewed column-strip tiling: strip k at
// time step τ covers columns [k·s − τ, k·s − τ + s). Updating column j at
// step τ needs column j−1 already at τ (the previous strip covered it) and
// column j+1 still at τ−1 (this strip covered it one step earlier, and no
// later strip has run). Each (column, step) pair is executed exactly once
// and in a dependence-equivalent order, so the result is bit-for-bit equal
// to Untiled.
//
// timeBlock bounds how many time steps one strip advances before moving
// on; the strip working set is (s + timeBlock) columns. Pass 0 for all of
// t (the paper's full-depth tiling).
func HandTiled(a []float64, n, t, s, timeBlock int) {
	if s <= 0 {
		s = DefaultStrip
	}
	if timeBlock <= 0 || timeBlock > t {
		timeBlock = t
	}
	for t0 := 0; t0 < t; t0 += timeBlock {
		tEnd := t0 + timeBlock
		if tEnd > t {
			tEnd = t
		}
		// Strip origins must cover every column at every τ in the block:
		// k·s − τ ranges over [1−s, n−2], relative τ in [1, tEnd−t0].
		depth := tEnd - t0
		for k0 := 1 - s; k0 <= n-2+depth; k0 += s {
			for rel := 1; rel <= depth; rel++ {
				lo := k0 - rel
				hi := lo + s - 1
				if lo < 1 {
					lo = 1
				}
				if hi > n-2 {
					hi = n - 2
				}
				for j := lo; j <= hi; j++ {
					relaxColumn(a, n, j)
				}
			}
		}
	}
}

// TileParams chooses hand-tiling parameters for an n×n problem, t time
// steps, and an L2 of l2Size bytes: the working set of one strip over one
// time block is (s + timeBlock + 2) columns, which must fit comfortably in
// the cache. Full time depth (timeBlock = t) is preferred — it removes all
// capacity misses, as each column then passes through the cache once —
// shrinking the strip as needed; when even s = 1 cannot cover the full
// depth, time is blocked and the array re-streams once per block.
func TileParams(n, t int, l2Size uint64) (s, timeBlock int) {
	colBytes := uint64(n) * 8
	budget := int(l2Size / colBytes) // columns fitting the L2
	if budget-t-4 >= 1 {
		return budget - t - 4, t
	}
	if budget < 5 {
		return 1, 1
	}
	return 1, budget - 4
}

// SweepDelta returns the mean absolute change one extra sweep makes; tests
// and examples use it as a convergence measure.
func SweepDelta(a []float64, n int) float64 {
	tmp := append([]float64(nil), a...)
	Untiled(tmp, n, 1)
	var sum float64
	for i := range a {
		d := tmp[i] - a[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(a))
}
