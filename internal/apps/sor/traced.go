package sor

import (
	"threadsched/internal/sim"
	"threadsched/internal/vm"
)

// TracedArray is the instrumented SOR workload. Instruction budget: the
// paper's compilers "simply unroll the inner-most loop"; we charge 10
// instructions per point (5 loads, 1 store) and 4 per column of loop
// control.
type TracedArray struct {
	CPU *sim.CPU
	N   int
	A   *sim.Matrix
}

const (
	pointInstr = 10
	colInstr   = 4
	pcPoint    = 0x100
	pcColumn   = 0x180
)

// NewTracedArray allocates the array in simulated memory with the same
// initial state as NewArray.
func NewTracedArray(cpu *sim.CPU, as *vm.AddressSpace, n int) *TracedArray {
	t := &TracedArray{CPU: cpu, N: n, A: sim.NewMatrix(cpu, as, n, n, true)}
	copy(t.A.Data(), NewArray(n))
	return t
}

// relaxColumn applies the stencil down interior column j, emitting the
// reference stream. The just-stored A[i,j] value is re-used from a
// register for the next point's A[i−1,j] operand — matching the natural
// compiled code — so each point costs 4 memory loads and 1 store after
// the first.
func (t *TracedArray) relaxColumn(j int) {
	t.CPU.Exec(pcColumn, colInstr)
	n := t.N
	prev := t.A.Load(0, j) // A[i-1,j] for i=1
	for i := 1; i < n-1; i++ {
		t.CPU.Exec(pcPoint, pointInstr)
		v := 0.2 * (t.A.Load(i, j) + t.A.Load(i+1, j) + prev +
			t.A.Load(i, j+1) + t.A.Load(i, j-1))
		t.A.Store(i, j, v)
		prev = v
	}
}

// Untiled runs t sweeps in storage order against simulated memory.
func (t *TracedArray) Untiled(iters int) {
	for it := 0; it < iters; it++ {
		for j := 1; j < t.N-1; j++ {
			t.relaxColumn(j)
		}
	}
}

// HandTiled runs the time-skewed tiling against simulated memory; see the
// native HandTiled for the schedule.
func (t *TracedArray) HandTiled(iters, s, timeBlock int) {
	if s <= 0 {
		s = DefaultStrip
	}
	if timeBlock <= 0 || timeBlock > iters {
		timeBlock = iters
	}
	n := t.N
	for t0 := 0; t0 < iters; t0 += timeBlock {
		tEnd := t0 + timeBlock
		if tEnd > iters {
			tEnd = iters
		}
		depth := tEnd - t0
		for k0 := 1 - s; k0 <= n-2+depth; k0 += s {
			for rel := 1; rel <= depth; rel++ {
				lo := k0 - rel
				hi := lo + s - 1
				if lo < 1 {
					lo = 1
				}
				if hi > n-2 {
					hi = n - 2
				}
				for j := lo; j <= hi; j++ {
					t.relaxColumn(j)
				}
			}
		}
	}
}

// Threaded forks one traced thread per (iteration, column) — all before a
// single run — hinted with the simulated addresses bounding the thread's
// column window, as in the paper's code.
func (t *TracedArray) Threaded(iters int, th *sim.Threads) {
	n := t.N
	for it := 0; it < iters; it++ {
		for j := 1; j < n-1; j++ {
			th.Fork(func(j, _ int) {
				t.relaxColumn(j)
			}, j, 0, t.A.Addr(0, j-1), t.A.Addr(n-1, j+1), 0)
		}
	}
	th.Run(false)
}
