package pde

import (
	"testing"

	"threadsched/internal/core"
)

// TestCacheConsciousMatchesRefBitwise requires the fused red-black pair
// schedule to be bit-identical to the pre-optimization fused schedule:
// interleaving red(j) with black(j−1) preserves every read value.
func TestCacheConsciousMatchesRefBitwise(t *testing.T) {
	for _, n := range []int{4, 5, 17, 65} {
		for _, iters := range []int{1, 3, 6} {
			a := NewGrid(n)
			b := a.Clone()
			CacheConsciousRef(a, iters)
			CacheConscious(b, iters)
			for k := range a.U {
				if a.U[k] != b.U[k] {
					t.Fatalf("n=%d it=%d: U[%d] = %v, ref %v", n, iters, k, b.U[k], a.U[k])
				}
				if a.R[k] != b.R[k] {
					t.Fatalf("n=%d it=%d: R[%d] = %v, ref %v", n, iters, k, b.R[k], a.R[k])
				}
			}
		}
	}
}

// TestThreadedExactMatchesRegular checks the dependence-exact variant
// against the plain red-black relaxation, serial and through the
// parallel wavefront executor at several worker counts.
func TestThreadedExactMatchesRegular(t *testing.T) {
	scheds := map[string]*core.DepScheduler{
		"serial": core.NewDep(core.Config{CacheSize: 1 << 15, BlockSize: 1 << 14}),
		"w2":     ParallelScheduler(1<<15, 2),
		"w4":     ParallelScheduler(1<<15, 4),
	}
	for name, sched := range scheds {
		for _, n := range []int{5, 17, 65} {
			for _, iters := range []int{1, 3, 6} {
				a := NewGrid(n)
				b := a.Clone()
				Regular(a, iters)
				if err := ThreadedExact(b, iters, sched); err != nil {
					t.Fatalf("%s n=%d it=%d: %v", name, n, iters, err)
				}
				for k := range a.U {
					if a.U[k] != b.U[k] {
						t.Fatalf("%s n=%d it=%d: U[%d] = %v, regular %v",
							name, n, iters, k, b.U[k], a.U[k])
					}
					if a.R[k] != b.R[k] {
						t.Fatalf("%s n=%d it=%d: R[%d] = %v, regular %v",
							name, n, iters, k, b.R[k], a.R[k])
					}
				}
			}
		}
		sched.Close()
	}
}
