package pde

import (
	"testing"

	"threadsched/internal/cache"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

func TestTracedMultigridMatchesNative(t *testing.T) {
	n := 33
	b, _ := manufactured(n)

	native, err := NewMultigrid(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	un, cn := native.Solve(b, 1e-9, 30)

	cpu := sim.NewCPU(trace.Discard)
	traced, err := NewTracedMultigrid(cpu, vm.NewAddressSpace(), n)
	if err != nil {
		t.Fatal(err)
	}
	ut, ct := traced.Solve(b, 1e-9, 30)
	if cn != ct {
		t.Fatalf("cycles differ: native %d, traced %d", cn, ct)
	}
	for k := range un {
		if un[k] != ut[k] {
			t.Fatalf("u[%d] differs: %v vs %v", k, un[k], ut[k])
		}
	}
	if cpu.Instructions == 0 {
		t.Fatal("no instructions charged")
	}
}

func TestTracedMultigridThreadedMatchesSequential(t *testing.T) {
	n := 33
	b, _ := manufactured(n)

	cpu1 := sim.NewCPU(trace.Discard)
	seq, err := NewTracedMultigrid(cpu1, vm.NewAddressSpace(), n)
	if err != nil {
		t.Fatal(err)
	}
	us, _ := seq.Solve(b, 1e-9, 30)

	cpu2 := sim.NewCPU(trace.Discard)
	as := vm.NewAddressSpace()
	thr, err := NewTracedMultigrid(cpu2, as, n)
	if err != nil {
		t.Fatal(err)
	}
	thr.Threads = sim.NewThreads(cpu2, as, ThreadedScheduler(1<<15))
	ut, _ := thr.Solve(b, 1e-9, 30)
	for k := range us {
		if us[k] != ut[k] {
			t.Fatalf("threaded traced multigrid diverged at %d", k)
		}
	}
	if cpu2.Instructions <= cpu1.Instructions {
		t.Fatal("threaded run charged no scheduling overhead")
	}
}

func TestTracedMultigridValidation(t *testing.T) {
	cpu := sim.NewCPU(nil)
	if _, err := NewTracedMultigrid(cpu, vm.NewAddressSpace(), 10); err == nil {
		t.Fatal("invalid n accepted")
	}
	mg, err := NewTracedMultigrid(cpu, vm.NewAddressSpace(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if mg.Levels() != 4 { // 17, 9, 5, 3
		t.Fatalf("levels = %d", mg.Levels())
	}
}

// The downstream-user result: to reach the same residual under the cache
// model, the V-cycle costs far less modelled time than plain relaxation —
// the reason the paper's PDE kernel lives inside a multigrid solver.
func TestMultigridBeatsRelaxationUnderCacheModel(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation")
	}
	n := 129
	b, _ := manufactured(n)
	mach := machine.R8000().Scaled(64)
	cm := machine.CostModel{Machine: mach}

	runMG := func() (float64, float64) {
		h := cache.MustNewHierarchy(mach.Caches, nil)
		cpu := sim.NewCPU(h)
		mg, err := NewTracedMultigrid(cpu, vm.NewAddressSpace(), n)
		if err != nil {
			t.Fatal(err)
		}
		_, cycles := mg.Solve(b, 1e-8, 50)
		if cycles >= 50 {
			t.Fatal("multigrid did not converge")
		}
		sum := h.Summarize()
		return cm.Estimate(cpu.Instructions, sum.L1Misses, sum.L2.Misses).Seconds(),
			mg.ResidualNorm()
	}
	mgTime, mgResid := runMG()

	// Plain relaxation: give it 30× the sweeps of the MG fine-grid work
	// and it still must not reach the same residual at lower cost.
	h := cache.MustNewHierarchy(mach.Caches, nil)
	cpu := sim.NewCPU(h)
	plain, err := NewTracedMultigrid(cpu, vm.NewAddressSpace(), n)
	if err != nil {
		t.Fatal(err)
	}
	copy(plain.levels[0].b.Data(), b)
	plain.smooth(plain.levels[0], 300)
	sum := h.Summarize()
	plainTime := cm.Estimate(cpu.Instructions, sum.L1Misses, sum.L2.Misses).Seconds()
	plainResid := plain.ResidualNorm()

	if plainResid <= mgResid && plainTime <= mgTime {
		t.Fatalf("plain relaxation matched multigrid: %.2e in %.3fs vs %.2e in %.3fs",
			plainResid, plainTime, mgResid, mgTime)
	}
	if plainResid > 100*mgResid && plainTime < mgTime {
		// fine: relaxation is cheaper but far less converged — expected
		return
	}
	if plainResid > mgResid && plainTime > mgTime {
		// multigrid strictly wins — also expected
		return
	}
	t.Logf("mg: %.2e in %.4fs | plain(300 sweeps): %.2e in %.4fs",
		mgResid, mgTime, plainResid, plainTime)
}
