// Package pde implements the paper's §4.3 iterative PDE workload: red-black
// ordered Gauss–Seidel relaxation of Laplace's equation on a uniform n×n
// mesh with the residual calculated afterwards, as used inside a multigrid
// solver (iters ≈ 5).
//
// Three variants, as evaluated in Tables 4 and 5:
//
//   - Regular: each iteration sweeps all red points, then all black
//     points; one extra sweep at the end computes the residual. The data
//     passes through the cache 2·iters+1 times.
//   - Cache-conscious (Douglas): red and black sweeps fused line by line —
//     red on line j, black on line j−1 — and the residual computed along
//     with the black points of the final iteration, so the data passes
//     through the cache iters times. Bit-for-bit identical results to
//     Regular (the fused order preserves the red-black dependence).
//   - Threaded: the fused line block becomes a fine-grained thread, n−1
//     threads per iteration, hinted with the line's base address; the
//     scheduler's address-ordered bins reproduce the fused order.
//
// The grid is column-major (Fortran layout); a "line" is one column. Only
// interior points 1..n−2 are relaxed; the boundary stays fixed.
package pde

// Grid bundles the three arrays of the solver: the iterate u, the right
// hand side b, and the residual r, each n×n column-major.
type Grid struct {
	N       int
	U, B, R []float64
}

// NewGrid allocates an n×n problem with a deterministic right-hand side
// and zero initial iterate.
func NewGrid(n int) *Grid {
	g := &Grid{
		N: n,
		U: make([]float64, n*n),
		B: make([]float64, n*n),
		R: make([]float64, n*n),
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			g.B[j*n+i] = float64((i*7+j*3)%11) - 5.0
		}
	}
	return g
}

// Clone deep-copies the grid, for comparing variants on identical input.
func (g *Grid) Clone() *Grid {
	c := &Grid{N: g.N}
	c.U = append([]float64(nil), g.U...)
	c.B = append([]float64(nil), g.B...)
	c.R = append([]float64(nil), g.R...)
	return c
}

// idx returns the column-major index of (i, j).
func (g *Grid) idx(i, j int) int { return j*g.N + i }

// relaxPoint applies the five-point update at (i, j):
// u = ¼(b − u_W − u_E − u_S − u_N), the paper's stencil.
func (g *Grid) relaxPoint(i, j int) {
	n := g.N
	k := g.idx(i, j)
	g.U[k] = 0.25 * (g.B[k] - g.U[k-1] - g.U[k+1] - g.U[k-n] - g.U[k+n])
}

// residualPoint computes r = b − 4u − u_W − u_E − u_S − u_N at (i, j).
func (g *Grid) residualPoint(i, j int) {
	n := g.N
	k := g.idx(i, j)
	g.R[k] = g.B[k] - 4*g.U[k] - g.U[k-1] - g.U[k+1] - g.U[k-n] - g.U[k+n]
}

// relaxLine relaxes the points of colour c on interior line (column) j.
// Red is colour 0: points with (i+j) even.
func (g *Grid) relaxLine(j, c int) {
	start := 1 + (j+c+1)%2 // first interior row of the requested colour
	for i := start; i < g.N-1; i += 2 {
		g.relaxPoint(i, j)
	}
}

// residualLine computes the residual on interior line j (both colours).
func (g *Grid) residualLine(j int) {
	for i := 1; i < g.N-1; i++ {
		g.residualPoint(i, j)
	}
}

// Regular runs iters red-black iterations with whole-grid sweeps, then a
// whole-grid residual pass.
func Regular(g *Grid, iters int) {
	for it := 0; it < iters; it++ {
		for c := 0; c < 2; c++ {
			for j := 1; j < g.N-1; j++ {
				g.relaxLine(j, c)
			}
		}
	}
	for j := 1; j < g.N-1; j++ {
		g.residualLine(j)
	}
}

// fusedStep performs the line-fused work unit at step j of one iteration:
// red on line j (when in range), black on line j−1 (when in range), and —
// on the final iteration — the residual on line j−2, whose neighbours are
// then fully relaxed. Steps run j = 1 .. n (inclusive bounds chosen so the
// trailing black and residual lines complete).
//
// When both lines are interior the red and black sweeps run as one
// interleaved pass (fusedPair); the edge steps fall back to the
// single-line kernels. Bit-identical to fusedStepRef.
func (g *Grid) fusedStep(j int, last bool) {
	n := g.N
	if j >= 2 && j <= n-2 {
		g.fusedPair(j)
	} else {
		if j >= 1 && j <= n-2 {
			g.relaxLineFast(j, 0) // red
		}
		if j-1 >= 1 && j-1 <= n-2 {
			g.relaxLineFast(j-1, 1) // black
		}
	}
	if last && j-2 >= 1 && j-2 <= n-2 {
		g.residualLineFast(j - 2)
	}
}

// fusedPair relaxes red line j and black line j−1 in one row pass. The
// two colours on the pair share the same start row parity, and
// interleaving red(i,j) before black(i,j−1) per row preserves every value
// each point reads — black(i,j−1)'s east neighbour is the red(i,j) value
// just written, exactly as in the line-at-a-time order, while
// red(i,j)'s west neighbour black(i,j−1) is still unwritten at row i —
// so the pass is bit-identical to relaxLine(j,0) followed by
// relaxLine(j−1,1), at half the memory traffic. Requires 2 ≤ j ≤ n−2.
func (g *Grid) fusedPair(j int) {
	n := g.N
	uj := g.U[j*n : (j+1)*n]
	ujm1 := g.U[(j-1)*n : j*n]
	ujm2 := g.U[(j-2)*n : (j-1)*n]
	ujp1 := g.U[(j+1)*n : (j+2)*n]
	bj := g.B[j*n : (j+1)*n]
	bjm1 := g.B[(j-1)*n : j*n]
	for i := 1 + (j+1)%2; i < n-1; i += 2 {
		uj[i] = 0.25 * (bj[i] - uj[i-1] - uj[i+1] - ujm1[i] - ujp1[i])
		ujm1[i] = 0.25 * (bjm1[i] - ujm1[i-1] - ujm1[i+1] - ujm2[i] - uj[i])
	}
}

// relaxLineFast is relaxLine with the five column slices hoisted out of
// the row loop; identical operand order, bit-identical results.
func (g *Grid) relaxLineFast(j, c int) {
	n := g.N
	uj := g.U[j*n : (j+1)*n]
	left := g.U[(j-1)*n : j*n]
	right := g.U[(j+1)*n : (j+2)*n]
	bj := g.B[j*n : (j+1)*n]
	for i := 1 + (j+c+1)%2; i < n-1; i += 2 {
		uj[i] = 0.25 * (bj[i] - uj[i-1] - uj[i+1] - left[i] - right[i])
	}
}

// residualLineFast is residualLine with hoisted slices; bit-identical.
func (g *Grid) residualLineFast(j int) {
	n := g.N
	uj := g.U[j*n : (j+1)*n]
	left := g.U[(j-1)*n : j*n]
	right := g.U[(j+1)*n : (j+2)*n]
	bj := g.B[j*n : (j+1)*n]
	rj := g.R[j*n : (j+1)*n]
	for i := 1; i < n-1; i++ {
		rj[i] = bj[i] - 4*uj[i] - uj[i-1] - uj[i+1] - left[i] - right[i]
	}
}

// fusedStepRef is the pre-optimization fused work unit (line-at-a-time,
// per-point indexing), kept as the differential-test oracle and speedup
// baseline for fusedStep.
func (g *Grid) fusedStepRef(j int, last bool) {
	n := g.N
	if j >= 1 && j <= n-2 {
		g.relaxLine(j, 0) // red
	}
	if j-1 >= 1 && j-1 <= n-2 {
		g.relaxLine(j-1, 1) // black
	}
	if last && j-2 >= 1 && j-2 <= n-2 {
		g.residualLine(j - 2)
	}
}

// fusedSteps is the number of fused work units per iteration: lines 1..n−2
// for red, trailed by black and (possibly) residual lines, so steps run
// 1..n — i.e. n steps; the paper counts "ny+1 threads" for its ny interior
// lines, which is the same trailing structure.
func (g *Grid) fusedSteps() int { return g.N }

// CacheConscious runs iters iterations with the fused line schedule and
// the residual folded into the last iteration. Results are bit-for-bit
// identical to Regular.
func CacheConscious(g *Grid, iters int) {
	for it := 0; it < iters; it++ {
		last := it == iters-1
		for j := 1; j <= g.fusedSteps(); j++ {
			g.fusedStep(j, last)
		}
	}
}

// CacheConsciousRef is CacheConscious on the pre-optimization fused step,
// kept as the differential-test oracle and speedup baseline.
func CacheConsciousRef(g *Grid, iters int) {
	for it := 0; it < iters; it++ {
		last := it == iters-1
		for j := 1; j <= g.fusedSteps(); j++ {
			g.fusedStepRef(j, last)
		}
	}
}

// ResidualNorm returns the maximum-magnitude entry of r, for convergence
// assertions in tests and examples.
func (g *Grid) ResidualNorm() float64 {
	var worst float64
	for _, v := range g.R {
		if v < 0 {
			v = -v
		}
		if v > worst {
			worst = v
		}
	}
	return worst
}
