package pde

import (
	"testing"

	"threadsched/internal/cache"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

const (
	testN     = 65
	testIters = 5
)

func TestCacheConsciousMatchesRegularExactly(t *testing.T) {
	a := NewGrid(testN)
	b := a.Clone()
	Regular(a, testIters)
	CacheConscious(b, testIters)
	for k := range a.U {
		if a.U[k] != b.U[k] {
			t.Fatalf("U[%d]: regular %v, cache-conscious %v", k, a.U[k], b.U[k])
		}
		if a.R[k] != b.R[k] {
			t.Fatalf("R[%d]: regular %v, cache-conscious %v", k, a.R[k], b.R[k])
		}
	}
}

func TestThreadedMatchesRegularExactly(t *testing.T) {
	a := NewGrid(testN)
	b := a.Clone()
	Regular(a, testIters)
	Threaded(b, testIters, ThreadedScheduler(1<<16))
	for k := range a.U {
		if a.U[k] != b.U[k] {
			t.Fatalf("U[%d]: regular %v, threaded %v", k, a.U[k], b.U[k])
		}
		if a.R[k] != b.R[k] {
			t.Fatalf("R[%d]: regular %v, threaded %v", k, a.R[k], b.R[k])
		}
	}
}

func TestVariantsMatchAcrossSizesAndIters(t *testing.T) {
	for _, n := range []int{4, 5, 8, 17, 33} {
		for _, iters := range []int{1, 2, 3} {
			a := NewGrid(n)
			b := a.Clone()
			c := a.Clone()
			Regular(a, iters)
			CacheConscious(b, iters)
			Threaded(c, iters, ThreadedScheduler(1<<14))
			for k := range a.U {
				if a.U[k] != b.U[k] || a.U[k] != c.U[k] {
					t.Fatalf("n=%d iters=%d: U[%d] diverged: %v %v %v",
						n, iters, k, a.U[k], b.U[k], c.U[k])
				}
				if a.R[k] != b.R[k] || a.R[k] != c.R[k] {
					t.Fatalf("n=%d iters=%d: R[%d] diverged", n, iters, k)
				}
			}
		}
	}
}

func TestRelaxationConverges(t *testing.T) {
	g := NewGrid(33)
	Regular(g, 1)
	first := g.ResidualNorm()
	g2 := NewGrid(33)
	Regular(g2, 50)
	later := g2.ResidualNorm()
	if later >= first {
		t.Fatalf("residual did not shrink: 1 iter %v, 50 iters %v", first, later)
	}
}

func TestBoundaryUntouched(t *testing.T) {
	g := NewGrid(testN)
	Regular(g, 3)
	n := g.N
	for i := 0; i < n; i++ {
		for _, k := range []int{g.idx(i, 0), g.idx(i, n-1), g.idx(0, i), g.idx(n-1, i)} {
			if g.U[k] != 0 {
				t.Fatalf("boundary U[%d] = %v, want 0", k, g.U[k])
			}
		}
	}
}

func TestRedBlackColoring(t *testing.T) {
	// One red sweep of line j must touch only points with (i+j) even.
	g := NewGrid(9)
	for k := range g.U {
		g.U[k] = 0
	}
	g.relaxLine(3, 0)
	for i := 1; i < g.N-1; i++ {
		k := g.idx(i, 3)
		touched := g.U[k] != 0
		isRed := (i+3)%2 == 0
		if touched != isRed && g.B[k] != 0 {
			t.Fatalf("row %d: touched=%v but red=%v", i, touched, isRed)
		}
	}
}

func TestTracedMatchesNative(t *testing.T) {
	want := NewGrid(testN)
	Regular(want, testIters)

	for _, variant := range []string{"regular", "cc", "threaded"} {
		cpu := sim.NewCPU(trace.Discard)
		as := vm.NewAddressSpace()
		g := NewTracedGrid(cpu, as, testN)
		switch variant {
		case "regular":
			g.Regular(testIters)
		case "cc":
			g.CacheConscious(testIters)
		case "threaded":
			th := sim.NewThreads(cpu, as, ThreadedScheduler(1<<16))
			g.Threaded(testIters, th)
		}
		for j := 0; j < testN; j++ {
			for i := 0; i < testN; i++ {
				if got := g.U.Peek(i, j); got != want.U[want.idx(i, j)] {
					t.Fatalf("%s: U(%d,%d) = %v, want %v", variant, i, j, got,
						want.U[want.idx(i, j)])
				}
				if got := g.R.Peek(i, j); got != want.R[want.idx(i, j)] {
					t.Fatalf("%s: R(%d,%d) diverged", variant, i, j)
				}
			}
		}
	}
}

func TestTracedReferenceShape(t *testing.T) {
	var counts trace.Counts
	cpu := sim.NewCPU(&counts)
	g := NewTracedGrid(cpu, vm.NewAddressSpace(), 17)
	g.Regular(2)
	interior := uint64(15 * 15)
	// Each interior point relaxed twice per iteration? No: once per
	// iteration (its colour's sweep); 2 iterations → 2 relaxations each,
	// plus one residual evaluation each.
	wantStores := 2*interior + interior
	if counts.Stores() != wantStores {
		t.Errorf("stores = %d, want %d", counts.Stores(), wantStores)
	}
	wantLoads := 2*interior*5 + interior*6
	if counts.Loads() != wantLoads {
		t.Errorf("loads = %d, want %d", counts.Loads(), wantLoads)
	}
}

// Shape test for Table 5: the fused variants must cut the regular
// schedule's L2 capacity misses roughly in half (paper: 60% / 50%).
func TestFusionCutsL2CapacityMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled cache simulation")
	}
	n := 257 // 3 arrays × 528 KB ≫ scaled 32 KB L2
	mach := machine.R8000().Scaled(64)

	run := func(f func(g *TracedGrid, th *sim.Threads)) cache.Summary {
		h := cache.MustNewHierarchy(mach.Caches, nil)
		cpu := sim.NewCPU(h)
		as := vm.NewAddressSpace()
		g := NewTracedGrid(cpu, as, n)
		th := sim.NewThreads(cpu, as, ThreadedScheduler(mach.L2CacheSize()))
		f(g, th)
		return h.Summarize()
	}

	regular := run(func(g *TracedGrid, _ *sim.Threads) { g.Regular(5) })
	cc := run(func(g *TracedGrid, _ *sim.Threads) { g.CacheConscious(5) })
	threaded := run(func(g *TracedGrid, th *sim.Threads) { g.Threaded(5, th) })

	if regular.L2.Capacity == 0 {
		t.Fatal("regular run shows no capacity misses; scaling is wrong")
	}
	// Paper: CC avoids ~60% of capacity misses, threaded ~50%.
	if cc.L2.Capacity*3 > regular.L2.Capacity*2 {
		t.Errorf("cache-conscious capacity misses %d not < 2/3 of regular %d",
			cc.L2.Capacity, regular.L2.Capacity)
	}
	if threaded.L2.Capacity*3 > regular.L2.Capacity*2 {
		t.Errorf("threaded capacity misses %d not < 2/3 of regular %d",
			threaded.L2.Capacity, regular.L2.Capacity)
	}
	// Threaded carries scheduling overhead: more instructions than CC.
	if threaded.IFetches == cc.IFetches {
		t.Error("threaded and CC instruction streams identical; overhead missing")
	}
}

func BenchmarkNativeRegular(b *testing.B) {
	g := NewGrid(257)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Regular(g, 5)
	}
}

func BenchmarkNativeThreaded(b *testing.B) {
	g := NewGrid(257)
	s := ThreadedScheduler(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Threaded(g, 5, s)
	}
}
