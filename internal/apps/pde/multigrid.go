package pde

import (
	"fmt"

	"threadsched/internal/core"
)

// Multigrid is the solver the paper's PDE kernel is "meant to be nested
// inside" (§4.3): a geometric V-cycle for the 5-point Poisson problem
//
//	4u[i,j] − u_W − u_E − u_S − u_N = h²·f[i,j],   u = 0 on the boundary
//
// with red-black Gauss–Seidel smoothing (the §4.3 kernel, in its standard
// sign convention), full-weighting restriction and bilinear prolongation.
// Smoothing sweeps use the fused line schedule, optionally as fine-grained
// threads per line block — so the whole solver exercises the locality
// scheduler at every level, exactly the deployment the paper sketches
// ("iters ≈ 5" per grid is what its Table 4 measures).
type Multigrid struct {
	// Nu1 and Nu2 are pre- and post-smoothing sweep counts.
	Nu1, Nu2 int
	// CoarseSweeps relaxes the coarsest grid this many times in place of
	// a direct solve.
	CoarseSweeps int
	// Sched, when non-nil, runs every smoothing sweep as fine-grained
	// line threads.
	Sched *core.Scheduler

	levels []*mgLevel
}

// mgLevel holds one grid of the hierarchy (n×n including boundary).
type mgLevel struct {
	n       int
	u, b, r []float64
}

// NewMultigrid builds a hierarchy for an n×n grid; n must be 2^k+1 with
// at least two levels (n ≥ 5). sched may be nil for sequential smoothing.
func NewMultigrid(n int, sched *core.Scheduler) (*Multigrid, error) {
	if n < 5 || (n-1)&(n-2) != 0 {
		return nil, fmt.Errorf("pde: multigrid needs n = 2^k+1 ≥ 5, got %d", n)
	}
	mg := &Multigrid{Nu1: 2, Nu2: 2, CoarseSweeps: 30, Sched: sched}
	for size := n; size >= 3; size = (size-1)/2 + 1 {
		mg.levels = append(mg.levels, &mgLevel{
			n: size,
			u: make([]float64, size*size),
			b: make([]float64, size*size),
			r: make([]float64, size*size),
		})
		if size == 3 {
			break
		}
	}
	return mg, nil
}

// Levels returns the number of grids in the hierarchy.
func (mg *Multigrid) Levels() int { return len(mg.levels) }

// smoothLine relaxes colour c on interior column j of level l with the
// standard-sign red-black update u = ¼(b + u_W + u_E + u_S + u_N).
func (l *mgLevel) smoothLine(j, c int) {
	n := l.n
	start := 1 + (j+c+1)%2
	col := j * n
	for i := start; i < n-1; i += 2 {
		k := col + i
		l.u[k] = 0.25 * (l.b[k] + l.u[k-1] + l.u[k+1] + l.u[k-n] + l.u[k+n])
	}
}

// fusedSmoothStep is the threaded work unit: red on line j, black on
// line j−1 (same structure as the §4.3 kernel).
func (l *mgLevel) fusedSmoothStep(j int) {
	if j >= 1 && j <= l.n-2 {
		l.smoothLine(j, 0)
	}
	if j-1 >= 1 && j-1 <= l.n-2 {
		l.smoothLine(j-1, 1)
	}
}

// smooth runs `sweeps` red-black sweeps on level l, threaded if a
// scheduler is attached.
func (mg *Multigrid) smooth(l *mgLevel, sweeps int) {
	if mg.Sched == nil {
		for s := 0; s < sweeps; s++ {
			for j := 1; j <= l.n-1; j++ {
				l.fusedSmoothStep(j)
			}
		}
		return
	}
	const uBase = 0x2000_0000
	lineBytes := uint64(l.n) * 8
	step := func(j, _ int) { l.fusedSmoothStep(j) }
	for s := 0; s < sweeps; s++ {
		for j := 1; j <= l.n-1; j++ {
			mg.Sched.Fork(step, j, 0, uBase+uint64(j)*lineBytes, 0, 0)
		}
		mg.Sched.Run(false)
	}
}

// residual computes r = b − A·u on level l.
func (l *mgLevel) residual() {
	n := l.n
	for j := 1; j < n-1; j++ {
		for i := 1; i < n-1; i++ {
			k := j*n + i
			l.r[k] = l.b[k] - (4*l.u[k] - l.u[k-1] - l.u[k+1] - l.u[k-n] - l.u[k+n])
		}
	}
}

// restrict transfers fine.r to coarse.b by full weighting and clears
// coarse.u.
func restrict(fine, coarse *mgLevel) {
	nf, nc := fine.n, coarse.n
	for jc := 1; jc < nc-1; jc++ {
		for ic := 1; ic < nc-1; ic++ {
			i, j := 2*ic, 2*jc
			k := j*nf + i
			v := 4*fine.r[k] +
				2*(fine.r[k-1]+fine.r[k+1]+fine.r[k-nf]+fine.r[k+nf]) +
				fine.r[k-nf-1] + fine.r[k-nf+1] + fine.r[k+nf-1] + fine.r[k+nf+1]
			// Full weighting (Σ=16) with the h²-scaling of the
			// unscaled 5-point operator: coarse h² = 4× fine h², so the
			// restricted right-hand side carries a factor 4.
			coarse.b[jc*nc+ic] = v / 16 * 4
		}
	}
	for k := range coarse.u {
		coarse.u[k] = 0
	}
}

// prolongAdd interpolates coarse.u bilinearly and adds it into fine.u.
func prolongAdd(coarse, fine *mgLevel) {
	nf, nc := fine.n, coarse.n
	// Interior fine indices map to coarse indices within the array
	// (boundary entries hold the Dirichlet zeros), so reads are direct.
	at := func(ic, jc int) float64 { return coarse.u[jc*nc+ic] }
	for j := 1; j < nf-1; j++ {
		for i := 1; i < nf-1; i++ {
			var v float64
			ic, jc := i/2, j/2
			switch {
			case i%2 == 0 && j%2 == 0:
				v = at(ic, jc)
			case i%2 == 1 && j%2 == 0:
				v = 0.5 * (at(ic, jc) + at(ic+1, jc))
			case i%2 == 0 && j%2 == 1:
				v = 0.5 * (at(ic, jc) + at(ic, jc+1))
			default:
				v = 0.25 * (at(ic, jc) + at(ic+1, jc) + at(ic, jc+1) + at(ic+1, jc+1))
			}
			fine.u[j*nf+i] += v
		}
	}
}

// vcycle runs one V-cycle from level idx down.
func (mg *Multigrid) vcycle(idx int) {
	l := mg.levels[idx]
	if idx == len(mg.levels)-1 {
		mg.smooth(l, mg.CoarseSweeps)
		return
	}
	mg.smooth(l, mg.Nu1)
	l.residual()
	restrict(l, mg.levels[idx+1])
	mg.vcycle(idx + 1)
	prolongAdd(mg.levels[idx+1], l)
	mg.smooth(l, mg.Nu2)
}

// Solve runs V-cycles on A·u = b (b in interior-point layout, n×n
// column-major with zero boundary ring) until the residual max-norm falls
// below tol or maxCycles is reached; it returns the solution and the
// cycle count used.
func (mg *Multigrid) Solve(b []float64, tol float64, maxCycles int) ([]float64, int) {
	fine := mg.levels[0]
	copy(fine.b, b)
	for k := range fine.u {
		fine.u[k] = 0
	}
	cycles := 0
	for ; cycles < maxCycles; cycles++ {
		if mg.ResidualNorm() <= tol {
			break
		}
		mg.vcycle(0)
	}
	out := make([]float64, len(fine.u))
	copy(out, fine.u)
	return out, cycles
}

// ResidualNorm returns the current max-norm residual on the finest grid.
func (mg *Multigrid) ResidualNorm() float64 {
	fine := mg.levels[0]
	fine.residual()
	var worst float64
	for _, v := range fine.r {
		if v < 0 {
			v = -v
		}
		if v > worst {
			worst = v
		}
	}
	return worst
}
