package pde

import (
	"math"
	"testing"

	"threadsched/internal/core"
)

// manufactured problem: u*(x,y) = x(1−x)·y(1−y) on the unit square with
// u=0 on the boundary solves −Δu = 2[x(1−x)+y(1−y)]; the unscaled 5-point
// operator's right-hand side is h²·f.
func manufactured(n int) (b, exact []float64) {
	h := 1.0 / float64(n-1)
	b = make([]float64, n*n)
	exact = make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			x, y := float64(i)*h, float64(j)*h
			exact[j*n+i] = x * (1 - x) * y * (1 - y)
			if i > 0 && i < n-1 && j > 0 && j < n-1 {
				b[j*n+i] = h * h * 2 * (x*(1-x) + y*(1-y))
			}
		}
	}
	return
}

func TestNewMultigridValidation(t *testing.T) {
	for _, n := range []int{0, 3, 4, 6, 100} {
		if _, err := NewMultigrid(n, nil); err == nil {
			t.Errorf("NewMultigrid(%d) succeeded, want error", n)
		}
	}
	mg, err := NewMultigrid(33, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mg.Levels() != 5 { // 33, 17, 9, 5, 3
		t.Errorf("levels = %d, want 5", mg.Levels())
	}
}

func TestMultigridSolvesManufacturedProblem(t *testing.T) {
	n := 65
	b, exact := manufactured(n)
	mg, err := NewMultigrid(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, cycles := mg.Solve(b, 1e-10, 50)
	if cycles >= 50 {
		t.Fatalf("did not converge in %d cycles (residual %g)", cycles, mg.ResidualNorm())
	}
	var worst float64
	for k := range u {
		if d := math.Abs(u[k] - exact[k]); d > worst {
			worst = d
		}
	}
	// Discretization error is O(h²) ≈ 2.4e-4 at n=65; allow some slack.
	if worst > 5e-4 {
		t.Fatalf("max error %g exceeds discretization-order bound", worst)
	}
}

func TestMultigridConvergesFast(t *testing.T) {
	// The point of multigrid: residual shrinks by roughly an order of
	// magnitude per V-cycle, independent of n.
	for _, n := range []int{33, 65} {
		b, _ := manufactured(n)
		mg, err := NewMultigrid(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		copy(mg.levels[0].b, b)
		r0 := mg.ResidualNorm()
		mg.vcycle(0)
		r1 := mg.ResidualNorm()
		mg.vcycle(0)
		r2 := mg.ResidualNorm()
		if r1 > r0/4 || r2 > r1/4 {
			t.Errorf("n=%d: residuals %g -> %g -> %g, want ≥4x shrink per cycle",
				n, r0, r1, r2)
		}
	}
}

func TestMultigridThreadedMatchesSequentialExactly(t *testing.T) {
	n := 33
	b, _ := manufactured(n)
	seq, err := NewMultigrid(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := core.New(core.Config{CacheSize: 1 << 16})
	thr, err := NewMultigrid(n, sched)
	if err != nil {
		t.Fatal(err)
	}
	us, cs := seq.Solve(b, 1e-9, 30)
	ut, ct := thr.Solve(b, 1e-9, 30)
	if cs != ct {
		t.Fatalf("cycle counts differ: %d vs %d", cs, ct)
	}
	for k := range us {
		if us[k] != ut[k] {
			t.Fatalf("u[%d] differs: %v vs %v (line threads must preserve the red-black order)",
				k, us[k], ut[k])
		}
	}
}

func TestMultigridBeatsPlainRelaxation(t *testing.T) {
	// At equal smoothing work per fine-grid sweep-equivalent, V-cycles
	// must reach a far smaller residual than plain red-black relaxation.
	n := 65
	b, _ := manufactured(n)

	mg, err := NewMultigrid(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, cycles := mg.Solve(b, 1e-9, 50)
	mgResidual := mg.ResidualNorm()

	// Plain relaxation using the same smoother on the finest grid only,
	// given several times the multigrid's fine-grid sweep count.
	plain, err := NewMultigrid(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	copy(plain.levels[0].b, b)
	sweeps := cycles * (plain.Nu1 + plain.Nu2) * 4
	plain.smooth(plain.levels[0], sweeps)
	plainResidual := plain.ResidualNorm()

	if mgResidual*100 > plainResidual {
		t.Fatalf("multigrid residual %g not ≪ plain relaxation %g (after %d plain sweeps)",
			mgResidual, plainResidual, sweeps)
	}
}
