package pde

import (
	"fmt"

	"threadsched/internal/sim"
	"threadsched/internal/vm"
)

// TracedMultigrid is the instrumented counterpart of Multigrid: the same
// V-cycle arithmetic against simulated memory, so the solver's cache
// behaviour — the deployment §4.3 motivates — can be measured end to end.
// Instruction budgets follow the traced relaxation kernel's.
type TracedMultigrid struct {
	Nu1, Nu2     int
	CoarseSweeps int
	// Threads, when non-nil, runs each smoothing sweep as traced
	// fine-grained line threads.
	Threads *sim.Threads

	cpu    *sim.CPU
	levels []*tracedLevel
}

type tracedLevel struct {
	n       int
	u, b, r *sim.F64
}

const (
	restrictInstr = 14
	prolongInstr  = 10
	pcRestrict    = 0x300
	pcProlong     = 0x380
)

// NewTracedMultigrid builds the traced hierarchy for an n×n grid (n =
// 2^k+1 ≥ 5), allocating every level in simulated memory.
func NewTracedMultigrid(cpu *sim.CPU, as *vm.AddressSpace, n int) (*TracedMultigrid, error) {
	if n < 5 || (n-1)&(n-2) != 0 {
		return nil, fmt.Errorf("pde: multigrid needs n = 2^k+1 ≥ 5, got %d", n)
	}
	mg := &TracedMultigrid{Nu1: 2, Nu2: 2, CoarseSweeps: 30, cpu: cpu}
	for size := n; size >= 3; size = (size-1)/2 + 1 {
		mg.levels = append(mg.levels, &tracedLevel{
			n: size,
			u: sim.NewF64(cpu, as, size*size),
			b: sim.NewF64(cpu, as, size*size),
			r: sim.NewF64(cpu, as, size*size),
		})
		if size == 3 {
			break
		}
	}
	return mg, nil
}

// Levels returns the number of grids.
func (mg *TracedMultigrid) Levels() int { return len(mg.levels) }

func (mg *TracedMultigrid) smoothLine(l *tracedLevel, j, c int) {
	n := l.n
	start := 1 + (j+c+1)%2
	col := j * n
	for i := start; i < n-1; i += 2 {
		mg.cpu.Exec(pcRelax, relaxInstr)
		k := col + i
		v := 0.25 * (l.b.Load(k) + l.u.Load(k-1) + l.u.Load(k+1) +
			l.u.Load(k-n) + l.u.Load(k+n))
		l.u.Store(k, v)
	}
}

func (mg *TracedMultigrid) fusedSmoothStep(l *tracedLevel, j int) {
	if j >= 1 && j <= l.n-2 {
		mg.smoothLine(l, j, 0)
	}
	if j-1 >= 1 && j-1 <= l.n-2 {
		mg.smoothLine(l, j-1, 1)
	}
}

func (mg *TracedMultigrid) smooth(l *tracedLevel, sweeps int) {
	if mg.Threads == nil {
		for s := 0; s < sweeps; s++ {
			for j := 1; j <= l.n-1; j++ {
				mg.cpu.Exec(pcLineControl, lineInstr)
				mg.fusedSmoothStep(l, j)
			}
		}
		return
	}
	step := func(j, _ int) {
		mg.cpu.Exec(pcLineControl, lineInstr)
		mg.fusedSmoothStep(l, j)
	}
	for s := 0; s < sweeps; s++ {
		for j := 1; j <= l.n-1; j++ {
			hint := l.u.Addr(min(j, l.n-1) * l.n)
			mg.Threads.Fork(step, j, 0, hint, 0, 0)
		}
		mg.Threads.Run(false)
	}
}

func (mg *TracedMultigrid) residual(l *tracedLevel) {
	n := l.n
	for j := 1; j < n-1; j++ {
		for i := 1; i < n-1; i++ {
			mg.cpu.Exec(pcResid, residInstr)
			k := j*n + i
			v := l.b.Load(k) - (4*l.u.Load(k) - l.u.Load(k-1) - l.u.Load(k+1) -
				l.u.Load(k-n) - l.u.Load(k+n))
			l.r.Store(k, v)
		}
	}
}

func (mg *TracedMultigrid) restrictTo(fine, coarse *tracedLevel) {
	nf, nc := fine.n, coarse.n
	for jc := 1; jc < nc-1; jc++ {
		for ic := 1; ic < nc-1; ic++ {
			mg.cpu.Exec(pcRestrict, restrictInstr)
			i, j := 2*ic, 2*jc
			k := j*nf + i
			v := 4*fine.r.Load(k) +
				2*(fine.r.Load(k-1)+fine.r.Load(k+1)+fine.r.Load(k-nf)+fine.r.Load(k+nf)) +
				fine.r.Load(k-nf-1) + fine.r.Load(k-nf+1) + fine.r.Load(k+nf-1) + fine.r.Load(k+nf+1)
			coarse.b.Store(jc*nc+ic, v/16*4)
		}
	}
	for k := 0; k < nc*nc; k++ {
		coarse.u.Poke(k, 0) // bulk clear, modelled as register writes
	}
}

func (mg *TracedMultigrid) prolongAdd(coarse, fine *tracedLevel) {
	nf, nc := fine.n, coarse.n
	at := func(ic, jc int) float64 { return coarse.u.Load(jc*nc + ic) }
	for j := 1; j < nf-1; j++ {
		for i := 1; i < nf-1; i++ {
			mg.cpu.Exec(pcProlong, prolongInstr)
			var v float64
			ic, jc := i/2, j/2
			switch {
			case i%2 == 0 && j%2 == 0:
				v = at(ic, jc)
			case i%2 == 1 && j%2 == 0:
				v = 0.5 * (at(ic, jc) + at(ic+1, jc))
			case i%2 == 0 && j%2 == 1:
				v = 0.5 * (at(ic, jc) + at(ic, jc+1))
			default:
				v = 0.25 * (at(ic, jc) + at(ic+1, jc) + at(ic, jc+1) + at(ic+1, jc+1))
			}
			k := j*nf + i
			fine.u.Store(k, fine.u.Load(k)+v)
		}
	}
}

func (mg *TracedMultigrid) vcycle(idx int) {
	l := mg.levels[idx]
	if idx == len(mg.levels)-1 {
		mg.smooth(l, mg.CoarseSweeps)
		return
	}
	mg.smooth(l, mg.Nu1)
	mg.residual(l)
	mg.restrictTo(l, mg.levels[idx+1])
	mg.vcycle(idx + 1)
	mg.prolongAdd(mg.levels[idx+1], l)
	mg.smooth(l, mg.Nu2)
}

// Solve mirrors Multigrid.Solve against simulated memory.
func (mg *TracedMultigrid) Solve(b []float64, tol float64, maxCycles int) ([]float64, int) {
	fine := mg.levels[0]
	copy(fine.b.Data(), b)
	for k := range fine.u.Data() {
		fine.u.Poke(k, 0)
	}
	cycles := 0
	for ; cycles < maxCycles; cycles++ {
		if mg.ResidualNorm() <= tol {
			break
		}
		mg.vcycle(0)
	}
	out := make([]float64, fine.u.Len())
	copy(out, fine.u.Data())
	return out, cycles
}

// ResidualNorm mirrors Multigrid.ResidualNorm.
func (mg *TracedMultigrid) ResidualNorm() float64 {
	fine := mg.levels[0]
	mg.residual(fine)
	var worst float64
	for _, v := range fine.r.Data() {
		if v < 0 {
			v = -v
		}
		if v > worst {
			worst = v
		}
	}
	return worst
}
