package pde

import (
	"fmt"
	"testing"
)

const (
	benchN     = 513
	benchIters = 5
	benchL     = 2 << 20
)

func reportUpdates(b *testing.B, n, iters int) {
	updates := float64(iters) * float64(n-2) * float64(n-2)
	b.ReportMetric(updates*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mupdates/s")
}

// BenchmarkCacheConsciousRef is the pre-optimization fused schedule.
func BenchmarkCacheConsciousRef(b *testing.B) {
	g := NewGrid(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CacheConsciousRef(g, benchIters)
	}
	reportUpdates(b, benchN, benchIters)
}

// BenchmarkCacheConscious is the optimized fused red-black pair schedule.
func BenchmarkCacheConscious(b *testing.B) {
	g := NewGrid(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CacheConscious(g, benchIters)
	}
	reportUpdates(b, benchN, benchIters)
}

// BenchmarkThreadedExact measures the dependence-exact variant through
// the wavefront executor at 1/2/4 workers.
func BenchmarkThreadedExact(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			g := NewGrid(benchN)
			sched := ParallelScheduler(benchL, w)
			defer sched.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ThreadedExact(g, benchIters, sched); err != nil {
					b.Fatal(err)
				}
			}
			reportUpdates(b, benchN, benchIters)
		})
	}
}
