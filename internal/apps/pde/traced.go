package pde

import (
	"threadsched/internal/sim"
	"threadsched/internal/vm"
)

// TracedGrid is the instrumented counterpart of Grid: the same solver
// against simulated memory. Instruction budgets: 10 per relaxed point, 12
// per residual point, 4 per line of loop overhead.
type TracedGrid struct {
	CPU     *sim.CPU
	N       int
	U, B, R *sim.Matrix
}

const (
	relaxInstr    = 10
	residInstr    = 12
	lineInstr     = 4
	pcRelax       = 0x100
	pcResid       = 0x180
	pcLineControl = 0x240
)

// NewTracedGrid allocates the three arrays in simulated memory with the
// same deterministic right-hand side as NewGrid.
func NewTracedGrid(cpu *sim.CPU, as *vm.AddressSpace, n int) *TracedGrid {
	g := &TracedGrid{
		CPU: cpu,
		N:   n,
		U:   sim.NewMatrix(cpu, as, n, n, true),
		B:   sim.NewMatrix(cpu, as, n, n, true),
		R:   sim.NewMatrix(cpu, as, n, n, true),
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			g.B.Poke(i, j, float64((i*7+j*3)%11)-5.0)
		}
	}
	return g
}

func (g *TracedGrid) relaxPoint(i, j int) {
	g.CPU.Exec(pcRelax, relaxInstr)
	v := 0.25 * (g.B.Load(i, j) - g.U.Load(i-1, j) - g.U.Load(i+1, j) -
		g.U.Load(i, j-1) - g.U.Load(i, j+1))
	g.U.Store(i, j, v)
}

func (g *TracedGrid) residualPoint(i, j int) {
	g.CPU.Exec(pcResid, residInstr)
	v := g.B.Load(i, j) - 4*g.U.Load(i, j) - g.U.Load(i-1, j) - g.U.Load(i+1, j) -
		g.U.Load(i, j-1) - g.U.Load(i, j+1)
	g.R.Store(i, j, v)
}

func (g *TracedGrid) relaxLine(j, c int) {
	g.CPU.Exec(pcLineControl, lineInstr)
	start := 1 + (j+c+1)%2
	for i := start; i < g.N-1; i += 2 {
		g.relaxPoint(i, j)
	}
}

func (g *TracedGrid) residualLine(j int) {
	g.CPU.Exec(pcLineControl, lineInstr)
	for i := 1; i < g.N-1; i++ {
		g.residualPoint(i, j)
	}
}

// FusedStep mirrors Grid.fusedStep for the threaded variant.
func (g *TracedGrid) FusedStep(j int, last bool) {
	n := g.N
	if j >= 1 && j <= n-2 {
		g.relaxLine(j, 0)
	}
	if j-1 >= 1 && j-1 <= n-2 {
		g.relaxLine(j-1, 1)
	}
	if last && j-2 >= 1 && j-2 <= n-2 {
		g.residualLine(j - 2)
	}
}

// FusedSteps mirrors Grid.fusedSteps.
func (g *TracedGrid) FusedSteps() int { return g.N }

// Regular runs the whole-grid-sweep schedule against simulated memory.
func (g *TracedGrid) Regular(iters int) {
	for it := 0; it < iters; it++ {
		for c := 0; c < 2; c++ {
			for j := 1; j < g.N-1; j++ {
				g.relaxLine(j, c)
			}
		}
	}
	for j := 1; j < g.N-1; j++ {
		g.residualLine(j)
	}
}

// CacheConscious runs the fused schedule against simulated memory.
func (g *TracedGrid) CacheConscious(iters int) {
	for it := 0; it < iters; it++ {
		last := it == iters-1
		for j := 1; j <= g.FusedSteps(); j++ {
			g.FusedStep(j, last)
		}
	}
}

// Threaded runs the fused schedule with one traced thread per line block,
// hinted with the line's simulated base address, one scheduler run per
// iteration.
func (g *TracedGrid) Threaded(iters int, th *sim.Threads) {
	for it := 0; it < iters; it++ {
		last := it == iters-1
		lastArg := 0
		if last {
			lastArg = 1
		}
		for j := 1; j <= g.FusedSteps(); j++ {
			th.Fork(func(j, lastArg int) {
				g.FusedStep(j, lastArg == 1)
			}, j, lastArg, g.U.Addr(0, min(j, g.N-1)), 0, 0)
		}
		th.Run(false)
	}
}
