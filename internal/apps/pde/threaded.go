package pde

import "threadsched/internal/core"

// Threaded runs iters iterations forking one fine-grained thread per fused
// line block (§4.3: "there are ny+1 threads to do the work each
// iteration"), with the line's base address as a one-dimensional hint.
// Because the red-black ordering determines when each element may be
// updated, threads are run once per iteration; the scheduler's
// allocation-ordered bins and FIFO groups preserve ascending line order,
// so results are bit-for-bit identical to Regular.
func Threaded(g *Grid, iters int, sched *core.Scheduler) {
	const uBase = 0x1000_0000
	lineBytes := uint64(g.N) * 8
	step := func(j, lastArg int) { g.fusedStep(j, lastArg == 1) }
	for it := 0; it < iters; it++ {
		lastArg := 0
		if it == iters-1 {
			lastArg = 1
		}
		for j := 1; j <= g.fusedSteps(); j++ {
			sched.Fork(step, j, lastArg, uBase+uint64(j)*lineBytes, 0, 0)
		}
		sched.Run(false)
	}
}

// ThreadedScheduler builds the scheduler configuration used for the PDE
// workload: one-dimensional hints, default block size of half the cache
// (one line of hints only occupies one dimension of the plane).
func ThreadedScheduler(l2Size uint64) *core.Scheduler {
	return core.New(core.Config{CacheSize: l2Size, BlockSize: l2Size / 2})
}
