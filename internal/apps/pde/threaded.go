package pde

import "threadsched/internal/core"

// Threaded runs iters iterations forking one fine-grained thread per fused
// line block (§4.3: "there are ny+1 threads to do the work each
// iteration"), with the line's base address as a one-dimensional hint.
// Because the red-black ordering determines when each element may be
// updated, threads are run once per iteration; the scheduler's
// allocation-ordered bins and FIFO groups preserve ascending line order,
// so results are bit-for-bit identical to Regular.
func Threaded(g *Grid, iters int, sched *core.Scheduler) {
	const uBase = 0x1000_0000
	lineBytes := uint64(g.N) * 8
	step := func(j, lastArg int) { g.fusedStep(j, lastArg == 1) }
	for it := 0; it < iters; it++ {
		lastArg := 0
		if it == iters-1 {
			lastArg = 1
		}
		for j := 1; j <= g.fusedSteps(); j++ {
			sched.Fork(step, j, lastArg, uBase+uint64(j)*lineBytes, 0, 0)
		}
		sched.Run(false)
	}
}

// ThreadedScheduler builds the scheduler configuration used for the PDE
// workload: one-dimensional hints, default block size of half the cache
// (one line of hints only occupies one dimension of the plane).
func ThreadedScheduler(l2Size uint64) *core.Scheduler {
	return core.New(core.Config{CacheSize: l2Size, BlockSize: l2Size / 2})
}

// ThreadedExact runs the fused schedule with one dependence-constrained
// thread per fused step on the dependence-aware scheduler (the §6
// extension), forking all iterations before a single Run: thread (it, j)
// runs after (it, j−1) — the within-iteration chain that reproduces the
// fused line order — and after (it−1, j+2), the first step of the
// previous iteration to finish every line step (it, j) touches. Any
// schedule respecting these constraints computes exactly CacheConscious
// (hence Regular), bit for bit.
func ThreadedExact(g *Grid, iters int, sched *core.DepScheduler) error {
	const uBase = 0x1000_0000
	lineBytes := uint64(g.N) * 8
	step := func(j, lastArg int) { g.fusedStep(j, lastArg == 1) }
	steps := g.fusedSteps()
	prev := make([]core.ThreadID, steps+1) // ids of iteration it−1
	cur := make([]core.ThreadID, steps+1)
	for it := 0; it < iters; it++ {
		lastArg := 0
		if it == iters-1 {
			lastArg = 1
		}
		for j := 1; j <= steps; j++ {
			deps := make([]core.ThreadID, 0, 2)
			if j > 1 {
				deps = append(deps, cur[j-1])
			}
			if it > 0 && j+2 <= steps {
				deps = append(deps, prev[j+2])
			}
			cur[j] = sched.Fork(step, j, lastArg,
				uBase+uint64(j)*lineBytes, 0, 0, deps...)
		}
		prev, cur = cur, prev
	}
	return sched.Run()
}

// ParallelScheduler is ThreadedScheduler's multicore counterpart for the
// dependence-exact variant: the same binning plus the parallel wavefront
// executor. Concurrently runnable threads of the PDE DAG are at least
// three fused steps apart (thread (it₂,j₂) transitively requires
// (it₁, j₂+2(it₂−it₁)) with it₁ < it₂, so a pending (it₁,j₁) has
// j₁ ≥ j₂+3), which keeps each thread's written lines (j, j−1, residual
// j−2) out of the other's window — the parallel run is race-free and
// still bit-identical to Regular. Close it to release the worker pool.
func ParallelScheduler(l2Size uint64, workers int) *core.DepScheduler {
	return core.NewDep(core.Config{CacheSize: l2Size, BlockSize: l2Size / 2, Workers: workers})
}
