# Tier-1 gate and convenience targets for the threadsched reproduction.
#
#   make check   — the full tier-1 gate: build, vet, tests, and the race
#                  suites (core concurrency + trace pipeline + golden
#                  equivalence of the batched/parallel simulation paths)
#   make serve-smoke — end-to-end daemon smoke: boot cmd/tracesimd, push
#                  jobs through it with cmd/loadgen, require every one to
#                  complete, then drain it with SIGTERM
#   make crash-smoke — the kill -9 chaos gate: boot a journaled daemon,
#                  SIGKILL it mid-batch, tear the journal tail, restart,
#                  and require every pre-crash job ID to resolve (with
#                  its original result, or as failed-interrupted) and
#                  idempotent resubmits to dedupe — under -race
#   make fuzz-smoke — short bursts of the trace-format fuzzers (reader
#                  robustness + chunk/trailer integrity oracle + sharded
#                  decode differential + sliced-simulation differential)
#                  plus the daemon's request-decode fuzzer and the job
#                  journal's replay fuzzer
#   make guard-pipeline — the opt-in throughput tripwire: fails if the
#                  batched or pipelined reference-stream path falls below
#                  the serial path
#   make guard-replay — the opt-in sliced-replay tripwire: fails if the
#                  address-sliced parallel simulation falls below its
#                  serial baseline at >=2 workers (skips on 1-CPU hosts)
#   make guard-tree — the opt-in hierarchical-dispatch tripwire: fails if
#                  routing a parallel run through the topology bin tree
#                  falls below the flat segmented dispatcher on the same
#                  workload (skips on 1-CPU hosts)
#   make bench   — one pass over every benchmark (smoke, not measurement)
#   make bench-core — the fork/run pipeline benchmarks with real counts
#   make bench-sim  — the simulation-pipeline benchmarks; writes a
#                  versioned BENCH_SIM.json (refs/sec per stage, with
#                  worker counts)
#   make bench-apps — the native application-kernel benchmarks; writes a
#                  versioned BENCH_APPS.json (serial vs threaded vs
#                  parallel per app)
#   make bench-replay — the trace-replay benchmarks (serial vs sharded
#                  decode, decode-only + end-to-end per worker count);
#                  writes a versioned BENCH_REPLAY.json
#   make json    — regenerate BENCH_CORE.json at the quick geometry
#   make timeline — demo the observability layer: run one table with
#                  metrics + worker timeline attached, writing
#                  metrics.json and timeline.json (load the latter in
#                  chrome://tracing or https://ui.perfetto.dev)

GO ?= go

.PHONY: check build vet test race serve-smoke crash-smoke fuzz-smoke guard-pipeline guard-replay guard-tree bench bench-core bench-sim bench-apps bench-replay json timeline

check: build vet test race serve-smoke crash-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout 10m ./...

race:
	$(GO) test -race -timeout 10m ./internal/core/... ./internal/trace/... ./internal/obs/... ./internal/fault/... ./internal/sim/... ./internal/server/... ./internal/journal/...
	$(GO) test -race -timeout 10m -run 'Parallel|Exact|Threaded' ./internal/apps/...
	$(GO) test -race -timeout 10m -run 'TestGoldenEquivalence|TestRunJobs|TestReplayBench|TestRunJob|TestConfigReuse|TestPipelinedJob' ./internal/harness/

# Short deterministic-corpus + 10s random bursts of the trace fuzzers;
# enough to catch format regressions without a dedicated fuzz farm.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReader -fuzztime 10s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzChunkTrailer -fuzztime 10s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzShardedDecode -fuzztime 10s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzSliceRouter -fuzztime 10s ./internal/sim/
	$(GO) test -run '^$$' -fuzz FuzzDecodeRequest -fuzztime 10s ./internal/server/
	$(GO) test -run '^$$' -fuzz FuzzJournalReplay -fuzztime 10s ./internal/journal/

# End-to-end daemon smoke: boot the daemon on a local port, complete a
# small batch of jobs through the HTTP API under concurrency, then drain
# with SIGTERM. Part of `make check`, so kept small and quick.
SMOKE_ADDR ?= 127.0.0.1:18080
serve-smoke:
	@mkdir -p bin
	$(GO) build -o bin/tracesimd ./cmd/tracesimd
	$(GO) build -o bin/loadgen ./cmd/loadgen
	@./bin/tracesimd -addr $(SMOKE_ADDR) -workers 2 -queue 64 & pid=$$!; \
	sleep 1; \
	./bin/loadgen -addr http://$(SMOKE_ADDR) -jobs 40 -concurrency 8 -min-completions 40 \
		|| { kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; wait $$pid

# Kill -9 chaos gate (part of `make check`): the whole crash →
# torn-tail → restart → audit cycle lives in TestCrashSmoke, which
# re-execs the test binary as a real daemon process, so -race rides
# along. Gated behind CRASH_SMOKE=1 so a bare `go test ./...` stays
# fast and process-free.
crash-smoke:
	CRASH_SMOKE=1 $(GO) test -race -count=1 -run TestCrashSmoke -timeout 5m -v ./cmd/tracesimd/

# Opt-in perf regression guard (real throughput measurement, so not part
# of the default test run): the batched and pipelined paths must not fall
# below serial.
guard-pipeline:
	GUARD_PIPELINE=1 $(GO) test -run TestGuardPipelineThroughput -count=1 -v ./internal/harness/

# Opt-in sliced-replay guard: address-sliced parallel simulation must not
# fall below its serial baseline at >=2 workers. Needs a multicore host
# (skips otherwise — scatter is added work a single core cannot hide).
guard-replay:
	GUARD_REPLAY=1 $(GO) test -run TestGuardReplayThroughput -count=1 -timeout 20m -v ./internal/harness/

# Opt-in hierarchical-dispatch guard: the bin-tree dispatcher must not
# fall below the flat segmented dispatcher on the same skewed workload.
# Needs a multicore host (skips otherwise).
guard-tree:
	GUARD_TREE=1 $(GO) test -run TestGuardTreeThroughput -count=1 -v ./internal/core/

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

bench-core:
	$(GO) test -run='^$$' -bench='BenchmarkParallelFork|BenchmarkPartitionedRun|BenchmarkTable1ThreadOverhead' .

bench-sim:
	$(GO) run ./cmd/locality-bench -size scaled -simbench BENCH_SIM.json

bench-apps:
	$(GO) run ./cmd/locality-bench -appbench BENCH_APPS.json

bench-replay:
	$(GO) run ./cmd/locality-bench -size scaled -replaybench BENCH_REPLAY.json

json:
	$(GO) run ./cmd/locality-bench -size quick -json BENCH_CORE.json

timeline:
	$(GO) run ./cmd/locality-bench -exp table2 -size quick -mode pipeline -parallel 2 \
		-metrics metrics.json -timeline timeline.json
