# Tier-1 gate and convenience targets for the threadsched reproduction.
#
#   make check   — the full tier-1 gate: build, vet, tests, and the core
#                  package's concurrency suite under the race detector
#   make bench   — one pass over every benchmark (smoke, not measurement)
#   make bench-core — the fork/run pipeline benchmarks with real counts
#   make json    — regenerate BENCH_CORE.json at the quick geometry

GO ?= go

.PHONY: check build vet test race bench bench-core json

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

bench-core:
	$(GO) test -run='^$$' -bench='BenchmarkParallelFork|BenchmarkPartitionedRun|BenchmarkTable1ThreadOverhead' .

json:
	$(GO) run ./cmd/locality-bench -size quick -json BENCH_CORE.json
