// Benchmarks regenerating every table and figure of the paper's
// evaluation (at the Quick scaled geometry — run cmd/locality-bench for
// the larger default geometry or the paper's full sizes), plus ablation
// benchmarks for the design choices DESIGN.md calls out. Custom metrics
// carry the reproduced quantities: modelled seconds (sim_s), second-level
// capacity misses (L2cap), bins used.
package threadsched_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"threadsched"
	"threadsched/internal/apps/nbody"
	"threadsched/internal/apps/sor"
	"threadsched/internal/cache"
	"threadsched/internal/core"
	"threadsched/internal/gpthreads"
	"threadsched/internal/harness"
	"threadsched/internal/machine"
	"threadsched/internal/sim"
	"threadsched/internal/smp"
	"threadsched/internal/stealing"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

// quick is the shared benchmark geometry.
func quick() harness.Config { return harness.Quick() }

// BenchmarkTable1ThreadOverhead measures the native fork+run cost of null
// threads — the reproduction of Table 1's microbenchmark (§4.1).
func BenchmarkTable1ThreadOverhead(b *testing.B) {
	s := threadsched.New(threadsched.Config{CacheSize: 2 << 20, BlockSize: 1 << 20})
	null := func(int, int) {}
	const batch = 4096
	// Warm the free lists: the paper measures steady-state overhead.
	for j := 0; j < batch; j++ {
		s.Fork(null, j, 0, uint64(j%16)<<20, uint64((j/16)%16)<<20, 0)
	}
	s.Run(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			s.Fork(null, j, 0, uint64(j%16)<<20, uint64((j/16)%16)<<20, 0)
		}
		s.Run(false)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/thread")
}

// Table 2: matmul times, both machines.
func BenchmarkTable2MatmulTime(b *testing.B) {
	c := quick()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		un := c.RunMatmul(harness.MatmulInterchanged, c.R8000())
		th := c.RunMatmul(harness.MatmulThreaded, c.R8000())
		b.ReportMetric(un.Seconds(), "untiled_sim_s")
		b.ReportMetric(th.Seconds(), "threaded_sim_s")
		b.ReportMetric(un.Seconds()/th.Seconds(), "speedup")
	}
}

// Table 3: matmul miss classification.
func BenchmarkTable3MatmulMisses(b *testing.B) {
	c := quick()
	for i := 0; i < b.N; i++ {
		un := c.RunMatmul(harness.MatmulInterchanged, c.R8000())
		ti := c.RunMatmul(harness.MatmulTiledInterchanged, c.R8000())
		th := c.RunMatmul(harness.MatmulThreaded, c.R8000())
		b.ReportMetric(float64(un.Summary.L2.Capacity), "untiled_L2cap")
		b.ReportMetric(float64(ti.Summary.L2.Capacity), "tiled_L2cap")
		b.ReportMetric(float64(th.Summary.L2.Capacity), "threaded_L2cap")
	}
}

// Table 4: PDE times.
func BenchmarkTable4PDETime(b *testing.B) {
	c := quick()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg := c.RunPDE(harness.PDERegular, c.R8000())
		cc := c.RunPDE(harness.PDECacheConscious, c.R8000())
		th := c.RunPDE(harness.PDEThreaded, c.R8000())
		b.ReportMetric(reg.Seconds(), "regular_sim_s")
		b.ReportMetric(cc.Seconds(), "cc_sim_s")
		b.ReportMetric(th.Seconds(), "threaded_sim_s")
	}
}

// Table 5: PDE miss classification.
func BenchmarkTable5PDEMisses(b *testing.B) {
	c := quick()
	for i := 0; i < b.N; i++ {
		reg := c.RunPDE(harness.PDERegular, c.R8000())
		th := c.RunPDE(harness.PDEThreaded, c.R8000())
		b.ReportMetric(float64(reg.Summary.L2.Capacity), "regular_L2cap")
		b.ReportMetric(float64(th.Summary.L2.Capacity), "threaded_L2cap")
	}
}

// Table 6: SOR times.
func BenchmarkTable6SORTime(b *testing.B) {
	c := quick()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		un := c.RunSOR(harness.SORUntiled, c.R8000())
		ti := c.RunSOR(harness.SORHandTiled, c.R8000())
		th := c.RunSOR(harness.SORThreaded, c.R8000())
		b.ReportMetric(un.Seconds(), "untiled_sim_s")
		b.ReportMetric(ti.Seconds(), "tiled_sim_s")
		b.ReportMetric(th.Seconds(), "threaded_sim_s")
	}
}

// Table 7: SOR miss classification.
func BenchmarkTable7SORMisses(b *testing.B) {
	c := quick()
	for i := 0; i < b.N; i++ {
		un := c.RunSOR(harness.SORUntiled, c.R8000())
		th := c.RunSOR(harness.SORThreaded, c.R8000())
		b.ReportMetric(float64(un.Summary.L2.Capacity), "untiled_L2cap")
		b.ReportMetric(float64(th.Summary.L2.Capacity), "threaded_L2cap")
	}
}

// Table 8: N-body times.
func BenchmarkTable8NBodyTime(b *testing.B) {
	c := quick()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		un := c.RunNBody(harness.NBodyUnthreaded, c.NBodyR8000(), c.NBodySteps)
		th := c.RunNBody(harness.NBodyThreaded, c.NBodyR8000(), c.NBodySteps)
		b.ReportMetric(un.Seconds(), "unthreaded_sim_s")
		b.ReportMetric(th.Seconds(), "threaded_sim_s")
	}
}

// Table 9: N-body miss classification.
func BenchmarkTable9NBodyMisses(b *testing.B) {
	c := quick()
	for i := 0; i < b.N; i++ {
		un := c.RunNBody(harness.NBodyUnthreaded, c.NBodyR8000(), 1)
		th := c.RunNBody(harness.NBodyThreaded, c.NBodyR8000(), 1)
		b.ReportMetric(float64(un.Summary.L2.Capacity), "unthreaded_L2cap")
		b.ReportMetric(float64(th.Summary.L2.Capacity), "threaded_L2cap")
		b.ReportMetric(float64(th.Sched.Bins), "bins")
	}
}

// Figure 4: block-size sweep (reported as modelled seconds at the sweep's
// two extremes plus the optimum).
func BenchmarkFigure4BlockSweep(b *testing.B) {
	c := quick()
	m := c.R8000()
	l2 := m.L2CacheSize()
	for i := 0; i < b.N; i++ {
		small := c.RunMatmulThreadedBlock(m, l2/32)
		best := c.RunMatmulThreadedBlock(m, l2/4)
		big := c.RunMatmulThreadedBlock(m, 4*l2)
		b.ReportMetric(small.Seconds(), "blockC32_sim_s")
		b.ReportMetric(best.Seconds(), "blockC4_sim_s")
		b.ReportMetric(big.Seconds(), "block4C_sim_s")
	}
}

// Ablation: bin tour order (allocation vs Morton vs Hilbert) on the
// N-body workload, where bins have true 3-D structure. §2.3 conjectures a
// shorter tour helps; this measures it.
func BenchmarkAblationTourOrder(b *testing.B) {
	c := quick()
	m := c.NBodyR8000()
	for _, tour := range []core.TourOrder{core.TourAllocation, core.TourMorton, core.TourHilbert} {
		b.Run(tour.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := c.RunNBodyThreadedTour(m, tour)
				b.ReportMetric(float64(r.Summary.L2.Misses), "L2misses")
				b.ReportMetric(r.Seconds(), "sim_s")
			}
		})
	}
}

// Ablation: symmetric hint folding (§2.3's 50% bin reduction) — native
// fork cost and bin count with and without.
func BenchmarkAblationFolding(b *testing.B) {
	for _, fold := range []bool{false, true} {
		name := "off"
		if fold {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			s := core.New(core.Config{CacheSize: 1 << 20, BlockSize: 1 << 16, FoldSymmetric: fold})
			null := func(int, int) {}
			var bins float64
			for i := 0; i < b.N; i++ {
				for j := 0; j < 2048; j++ {
					h1 := uint64(j%16) << 16
					h2 := uint64((j/16)%16) << 16
					s.Fork(null, j, 0, h1, h2, 0)
				}
				bins = float64(s.Stats().BinsUsed)
				s.Run(false)
			}
			b.ReportMetric(bins, "bins")
		})
	}
}

// Ablation: hash table dimension — chaining cost as the table shrinks.
func BenchmarkAblationHashDim(b *testing.B) {
	for _, dim := range []int{2, 4, 16, 64} {
		b.Run(string(rune('0'+dim/10))+string(rune('0'+dim%10)), func(b *testing.B) {
			s := core.New(core.Config{CacheSize: 1 << 26, BlockSize: 1 << 12, HashDim: dim})
			null := func(int, int) {}
			for i := 0; i < b.N; i++ {
				for j := 0; j < 2048; j++ {
					s.Fork(null, j, 0, uint64(j)<<12, 0, 0)
				}
				s.Run(false)
			}
		})
	}
}

// Ablation: thread-group batch size — §3.2's amortization argument.
func BenchmarkAblationGroupSize(b *testing.B) {
	for _, gs := range []int{1, 16, 256, 4096} {
		b.Run(groupName(gs), func(b *testing.B) {
			s := core.New(core.Config{CacheSize: 1 << 20, BlockSize: 1 << 18, GroupSize: gs})
			null := func(int, int) {}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 4096; j++ {
					s.Fork(null, j, 0, uint64(j%8)<<18, 0, 0)
				}
				s.Run(false)
			}
		})
	}
}

func groupName(gs int) string {
	switch gs {
	case 1:
		return "g1"
	case 16:
		return "g16"
	case 256:
		return "g256"
	default:
		return "g4096"
	}
}

// Ablation: the SMP extension — parallel bin execution on the native
// N-body step.
func BenchmarkAblationWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(string(rune('0'+w)), func(b *testing.B) {
			s := nbody.NewSystem(4000, 3)
			sched := core.New(core.Config{CacheSize: 2 << 20, Workers: w})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nbody.StepThreaded(s, sched, nil)
			}
		})
	}
}

// Ablation: page placement policy — the §2.2 virtual-memory effect on a
// physically indexed L2 (conflict misses under identity vs random
// placement).
func BenchmarkAblationPagePlacement(b *testing.B) {
	run := func(pol vm.Policy) cache.Stats {
		pt, err := vm.NewPageTable(4096, pol)
		if err != nil {
			b.Fatal(err)
		}
		m := machine.R8000().Scaled(64)
		h := cache.MustNewHierarchy(m.Caches, pt)
		cpu := sim.NewCPU(h)
		as := vm.NewAddressSpace()
		tr := sor.NewTracedArray(cpu, as, 251)
		th := sim.NewThreads(cpu, as, sor.ThreadedScheduler(m.L2CacheSize()))
		tr.Threaded(10, th)
		return h.L2().Stats()
	}
	for i := 0; i < b.N; i++ {
		ident := run(vm.IdentityPolicy{})
		random := run(vm.RandomPolicy{Seed: 9})
		b.ReportMetric(float64(ident.Conflict), "identity_L2conflict")
		b.ReportMetric(float64(random.Conflict), "random_L2conflict")
	}
}

// Ablation: §7's first open question — the locality algorithm on a
// general-purpose (goroutine-backed, synchronization-capable) thread
// package versus the specialized run-to-completion package. Compare
// ns/thread against BenchmarkTable1ThreadOverhead.
func BenchmarkAblationGeneralPurposeThreads(b *testing.B) {
	s := gpthreads.New(core.Config{CacheSize: 2 << 20, BlockSize: 1 << 20})
	null := func() {}
	const batch = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			s.Fork(null, uint64(j%16)<<20, uint64((j/16)%16)<<20, 0)
		}
		s.Run()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/thread")
}

// Ablation: the §7 SMP demonstration — locality-bin dispatch vs thread
// scatter on a simulated 4-processor machine with coherent private
// caches (deterministic simulation; metrics are the point, not ns/op).
func BenchmarkAblationSMPDispatch(b *testing.B) {
	m := machine.R8000().Scaled(16)
	for _, pol := range []smp.Policy{smp.LocalityBins, smp.Scatter} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := smp.NBodyExperiment(
					smp.Config{Procs: 4, Machine: m, Coherence: true}, 4000, pol, 42)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.L2Misses), "L2misses")
				b.ReportMetric(float64(r.Stats.Invalidations), "invalidations")
				b.ReportMetric(r.Speedup(), "speedup")
			}
		})
	}
}

// Ablation: the locality scheduler against the modern default — a
// Cilk-style work-stealing scheduler — on the same simulated
// multiprocessor and workload.
func BenchmarkAblationWorkStealing(b *testing.B) {
	m := machine.R8000().Scaled(16)
	for i := 0; i < b.N; i++ {
		loc, ws, steals, err := stealing.CompareWithLocality(m, 4, 4000, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(loc.L2Misses), "locality_L2misses")
		b.ReportMetric(float64(ws.L2Misses), "stealing_L2misses")
		b.ReportMetric(float64(ws.Stats.Invalidations), "stealing_invalidations")
		b.ReportMetric(float64(steals), "steals")
	}
}

// BenchmarkParallelFork measures fork throughput of the sharded
// concurrent path (Config.ParallelFork) against the serial
// single-producer path on the same workload: goroutine counts beyond 1
// split the same total fork count. On multicore hardware the sharded
// path scales near-linearly; ns/thread is the figure of merit.
func BenchmarkParallelFork(b *testing.B) {
	const total = 1 << 16
	null := func(int, int) {}
	hint := func(j int) (uint64, uint64) {
		return uint64(j%64) << 14, uint64((j/64)%64) << 14
	}
	b.Run("serial", func(b *testing.B) {
		s := core.New(core.Config{CacheSize: 1 << 22, BlockSize: 1 << 14})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < total; j++ {
				h1, h2 := hint(j)
				s.Fork(null, j, 0, h1, h2, 0)
			}
			b.StopTimer()
			s.Run(false) // drain outside the timed fork phase
			b.StartTimer()
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*total), "ns/thread")
	})
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sharded-g%d", g), func(b *testing.B) {
			s := core.New(core.Config{CacheSize: 1 << 22, BlockSize: 1 << 14, ParallelFork: true})
			per := total / g
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < g; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for j := w * per; j < (w+1)*per; j++ {
							h1, h2 := hint(j)
							s.Fork(null, j, 0, h1, h2, 0)
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				s.Run(false)
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*total), "ns/thread")
		})
	}
}

// BenchmarkPartitionedRun compares the two parallel dispatch policies:
// contiguous weighted tour segments with chunked stealing (the default)
// against the legacy shared atomic counter. Native wall time is reported
// per policy; the smp sub-benchmark reports the simulated coherence
// traffic delta, which is the effect wall time on a real multicore
// follows (segment dispatch keeps tour neighbours — and the read-mostly
// data they share — on one cache).
func BenchmarkPartitionedRun(b *testing.B) {
	const (
		bins    = 64
		perBin  = 256
		binData = 1 << 13 // 8 KiB of float64 work per bin
	)
	data := make([]float64, bins*binData/8)
	for i := range data {
		data[i] = float64(i)
	}
	sink := make([]float64, bins*perBin) // one slot per thread: race-free across workers
	body := func(a1, _ int) {
		base := (a1 % (binData / 8 / perBin)) * (binData / 8 / perBin)
		s := 0.0
		for k := 0; k < binData/8/perBin; k++ {
			s += data[base+k]
		}
		sink[a1] = s
	}
	for _, d := range []core.Dispatch{core.DispatchSegmented, core.DispatchAtomic} {
		b.Run(d.String(), func(b *testing.B) {
			s := core.New(core.Config{CacheSize: 1 << 20, BlockSize: 1 << 13,
				Workers: 4, Dispatch: d})
			defer s.Close()
			for bi := 0; bi < bins; bi++ {
				// Skewed occupancy: low bins hold more threads, so the
				// weighted partition and stealing both matter.
				n := perBin
				if bi%4 != 0 {
					n = perBin / 4
				}
				for j := 0; j < n; j++ {
					s.Fork(body, bi*perBin+j, 0, uint64(bi)<<13, 0, 0)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(true)
			}
		})
	}
	b.Run("smp-invalidations", func(b *testing.B) {
		m := machine.R8000().Scaled(16)
		for i := 0; i < b.N; i++ {
			seg, il, err := smp.CompareDispatch(m, 4, 4000, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(seg.Stats.Invalidations), "segment_invalidations")
			b.ReportMetric(float64(il.Stats.Invalidations), "interleave_invalidations")
			b.ReportMetric(float64(seg.L2Misses), "segment_L2misses")
			b.ReportMetric(float64(il.L2Misses), "interleave_L2misses")
			b.ReportMetric(seg.Speedup(), "segment_speedup")
		}
	})
}

// Ablation: trace file round trip — encoding density and replay equality,
// benchmarked as the substrate the full-size experiments would stream
// through.
func BenchmarkTraceRoundTrip(b *testing.B) {
	refs := make([]trace.Ref, 100000)
	for i := range refs {
		refs[i] = trace.Ref{Kind: trace.Load, Addr: uint64(0x1000_0000 + 8*i), Size: 8}
	}
	b.SetBytes(int64(len(refs)))
	for i := 0; i < b.N; i++ {
		var sink trace.Counts
		buf := encodeDecode(b, refs, &sink)
		if sink.Loads() != uint64(len(refs)) {
			b.Fatalf("replay lost records: %d", sink.Loads())
		}
		b.ReportMetric(float64(buf)/float64(len(refs)), "bytes/ref")
	}
}

func encodeDecode(b *testing.B, refs []trace.Ref, sink trace.Recorder) int {
	b.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, r := range refs {
		w.Record(r)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	written := buf.Len()
	r := trace.NewReader(&buf)
	if err := r.ForEach(func(ref trace.Ref) error { sink.Record(ref); return nil }); err != nil {
		b.Fatal(err)
	}
	return written
}

// BenchmarkSimModes measures one traced workload end to end — trace
// generation plus cache simulation — through each reference-stream path
// of the measurement pipeline (see internal/harness.Mode). All modes
// produce bit-identical statistics; refs/s is the comparable quantity.
// cmd/locality-bench -simbench runs the wider four-workload version and
// records BENCH_SIM.json.
func BenchmarkSimModes(b *testing.B) {
	for _, mode := range []harness.Mode{harness.ModeSerial, harness.ModeBatched, harness.ModePipelined} {
		b.Run(mode.String(), func(b *testing.B) {
			c := quick()
			c.Mode = mode
			m := c.R8000()
			var refs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := c.RunMatmul(harness.MatmulInterchanged, m)
				refs += r.Summary.IFetches + r.Summary.DataRefs
			}
			b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "refs/s")
		})
	}
}
