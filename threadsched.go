// Package threadsched is a Go implementation of the cache-locality thread
// scheduling system of Philbin, Edler, Anshus, Douglas & Li, "Thread
// Scheduling for Cache Locality" (ASPLOS 1996): a user-level package for
// very fine-grained, run-to-completion threads whose scheduler reorders
// execution using per-thread address hints so that threads touching nearby
// data run consecutively, turning spatial locality into second-level-cache
// temporal locality.
//
// The package mirrors the paper's three-call interface:
//
//	s := threadsched.New(threadsched.Config{CacheSize: 2 << 20})
//	for i := 0; i < n; i++ {
//	    for j := 0; j < n; j++ {
//	        s.Fork(dotProduct, i, j,
//	            threadsched.Hint(&at[i*n]), threadsched.Hint(&b[j*n]), 0)
//	    }
//	}
//	s.Run(false)
//
// Threads with hints falling in the same k-dimensional block of the hint
// space — block dimensions summing to at most the cache size — share a
// bin, and Run executes bin by bin.
//
// The repository is also a full reproduction of the paper's evaluation:
// a trace-driven two-level cache simulator with compulsory/capacity/
// conflict classification (internal/cache), machine models of the two SGI
// systems (internal/machine), the four workloads in all their variants
// (internal/apps/...), and a harness regenerating Tables 1–9 and Figure 4
// (internal/harness, cmd/locality-bench). See DESIGN.md and
// EXPERIMENTS.md.
package threadsched

import (
	"unsafe"

	"threadsched/internal/core"
	"threadsched/internal/fault"
	"threadsched/internal/obs"
	"threadsched/internal/trace"
)

// Re-exported scheduler types; see the internal/core documentation on each
// for the full semantics.
type (
	// Scheduler is the locality thread scheduler (th_init/th_fork/th_run).
	Scheduler = core.Scheduler
	// Config parameterizes a Scheduler.
	Config = core.Config
	// Func is a thread body: the paper's f(arg1, arg2).
	Func = core.Func
	// TourOrder selects the order Run visits bins in.
	TourOrder = core.TourOrder
	// Stats reports scheduler occupancy.
	Stats = core.Stats
	// RunStats snapshots one Run call's bin occupancy.
	RunStats = core.RunStats
	// Dispatch selects how a parallel Run hands bins to workers.
	Dispatch = core.Dispatch
	// Topology describes a cache hierarchy for hierarchical scheduling
	// (Config.Topology); nil keeps the flat single-level dispatch.
	Topology = core.Topology
	// TopoLevel is one cache level of a Topology, innermost first.
	TopoLevel = core.TopoLevel
)

// NewTopology validates cache levels (innermost first) and builds a
// Topology for Config.Topology.
func NewTopology(levels ...TopoLevel) (*Topology, error) {
	return core.NewTopology(levels...)
}

// ParseTopology parses a "32k:2,256k:8,8m:64"-style topology spec
// (capacity:workers[:stealchunk] per level, innermost first); "" and
// "flat" yield nil, the flat dispatch.
func ParseTopology(spec string) (*Topology, error) { return core.ParseTopology(spec) }

// Tour orders for Config.Tour.
const (
	// TourAllocation is the paper's ready-list order (default).
	TourAllocation = core.TourAllocation
	// TourMorton visits bins in Z-order of their block coordinates.
	TourMorton = core.TourMorton
	// TourHilbert visits bins along a 3-D Hilbert curve.
	TourHilbert = core.TourHilbert
)

// Dispatch policies for Config.Dispatch (Workers > 1).
const (
	// DispatchSegmented hands each worker a contiguous thread-weighted
	// segment of the bin tour, with chunked stealing for balance
	// (default).
	DispatchSegmented = core.DispatchSegmented
	// DispatchAtomic is the legacy one-bin-at-a-time atomic-counter
	// dispatch, kept as a comparison baseline.
	DispatchAtomic = core.DispatchAtomic
)

// MaxHints is the number of address hints a thread may carry.
const MaxHints = core.MaxHints

// KScheduler is the arbitrary-dimensionality generalization of Scheduler
// (§2.3's k-address algorithm); KConfig parameterizes it.
type (
	KScheduler = core.KScheduler
	KConfig    = core.KConfig
)

// DepScheduler adds dependence constraints between threads — the
// extension the paper's §6 leaves open; ThreadID names a forked thread.
type (
	DepScheduler = core.DepScheduler
	ThreadID     = core.ThreadID
)

// Failure model (see README "Failure model"): the context-taking run
// entry points — Scheduler.RunContext, Scheduler.RunEachContext,
// DepScheduler.RunContext — contain thread panics and report dependence
// problems as typed errors; the legacy Run entry points re-panic a
// contained *ThreadPanicError. The trace reader returns ErrCorrupt and
// ErrTruncated for damaged files.
type (
	// ThreadPanicError reports a contained thread-body panic with the
	// thread, bin, worker, and phase it happened in.
	ThreadPanicError = core.ThreadPanicError
	// DependencyCycleError reports a stuck DepScheduler run with one
	// witness cycle; matches ErrDependencyCycle.
	DependencyCycleError = core.DependencyCycleError
	// UnknownDependencyError reports a Fork whose deps named an unforked
	// thread ID; matches ErrUnknownDependency.
	UnknownDependencyError = core.UnknownDependencyError
	// TraceConsumerPanicError reports a contained trace-pipeline consumer
	// panic, surfaced by the pipeline's Close/Err.
	TraceConsumerPanicError = trace.ConsumerPanicError
)

// Sentinel errors for errors.Is; run entry points return them wrapped in
// the typed errors above.
var (
	// ErrDependencyCycle matches *DependencyCycleError.
	ErrDependencyCycle = core.ErrDependencyCycle
	// ErrUnknownDependency matches *UnknownDependencyError.
	ErrUnknownDependency = core.ErrUnknownDependency
	// ErrTraceCorrupt matches trace reads that hit a checksum, length, or
	// encoding violation.
	ErrTraceCorrupt = trace.ErrCorrupt
	// ErrTraceTruncated matches trace reads that hit a clean-looking but
	// premature end of stream (e.g. a crashed writer that never wrote the
	// trailer).
	ErrTraceTruncated = trace.ErrTruncated
)

// Deterministic fault injection (internal/fault re-exported): a seeded
// injector that fires panics, delays, stalls, and corruption at exact or
// probabilistic occurrence counts, for exercising the failure model in
// tests and soak runs. A nil *FaultInjector is fully disabled — every
// method is a no-op — so injection sites cost nothing in production code
// paths.
type (
	// FaultInjector decides, deterministically from (site, n, seed),
	// whether a fault fires.
	FaultInjector = fault.Injector
	// FaultConfig declares which sites fire, at which occurrences or with
	// what probability.
	FaultConfig = fault.Config
	// FaultSite names an injection point.
	FaultSite = fault.Site
)

// Injection sites for FaultConfig.
const (
	// FaultThreadPanic panics inside a thread body.
	FaultThreadPanic = fault.ThreadPanic
	// FaultWorkerDelay sleeps inside a worker.
	FaultWorkerDelay = fault.WorkerDelay
	// FaultPipelineStall delays a trace-pipeline consumer.
	FaultPipelineStall = fault.PipelineStall
	// FaultTraceCorrupt flips bytes in encoded trace data.
	FaultTraceCorrupt = fault.TraceCorrupt
)

// NewFaultInjector returns an injector for cfg; a zero cfg (or nil
// injector) never fires.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return fault.New(cfg) }

// Observability layer (Config.Obs): an opt-in, zero-overhead-when-absent
// bundle of per-worker metrics, a Chrome trace_event worker timeline, and
// pprof labels. Attach one to Config.Obs, run, then read
// Scheduler.Snapshot or write the timeline; see the internal/obs package
// documentation for the disabled contract and the metric glossary.
type (
	// Obs is the observability bundle; nil means disabled.
	Obs = obs.Obs
	// ObsSnapshot is a merged, JSON-serializable metrics snapshot.
	ObsSnapshot = obs.Snapshot
	// Timeline is the worker-span tracer behind Obs.Timeline.
	Timeline = obs.Timeline
)

// NewObs returns an enabled observability bundle with metrics sharded
// over the given number of tracks (use the worker count). Chain
// WithTimeline to also record worker spans.
func NewObs(tracks int) *Obs { return obs.New(tracks) }

// New returns a Scheduler configured by cfg. The zero Config is usable:
// it assumes the paper's 2 MB second-level cache.
func New(cfg Config) *Scheduler { return core.New(cfg) }

// NewK returns a k-dimensional scheduler for workloads with more than
// three address hints.
func NewK(cfg KConfig) *KScheduler { return core.NewK(cfg) }

// NewDep returns a dependence-aware scheduler: threads may name
// previously forked threads they must run after, and Run executes a
// locality-greedy topological order.
func NewDep(cfg Config) *DepScheduler { return core.NewDep(cfg) }

// NewForCache returns a Scheduler with default parameters for a
// second-level cache of the given byte size.
func NewForCache(cacheSize uint64) *Scheduler {
	return core.New(core.Config{CacheSize: cacheSize})
}

// DefaultBlockSize returns the default per-dimension block size for a
// cache of the given size scheduled over dims hint dimensions.
func DefaultBlockSize(cacheSize uint64, dims int) uint64 {
	return core.DefaultBlockSize(cacheSize, dims)
}

// Hint converts a pointer into a scheduling hint: the address of the data
// the thread will touch, as in the paper's th_fork(h1, h2, h3) interface.
// (Go's garbage collector does not move heap objects, so the address is a
// stable locality proxy for the duration of a fork/run cycle; hints are
// never dereferenced.) Synthetic hints — any uint64 that preserves the
// data's relative layout — work equally well.
func Hint[T any](p *T) uint64 {
	return uint64(uintptr(unsafe.Pointer(p)))
}
