package threadsched_test

import (
	"fmt"

	"threadsched"
)

// The paper's §2.1 transformation: replace a dot-product inner loop with
// one fine-grained thread per (i, j), hinted with the two vectors'
// addresses.
func Example() {
	const n = 8
	at := make([]float64, n*n) // Aᵀ: row i of A stored contiguously
	b := make([]float64, n*n)  // B: column j stored contiguously
	c := make([]float64, n*n)
	for i := range at {
		at[i], b[i] = 1, 2
	}

	s := threadsched.New(threadsched.Config{CacheSize: 1 << 16})
	dot := func(i, j int) {
		var sum float64
		for k := 0; k < n; k++ {
			sum += at[i*n+k] * b[j*n+k]
		}
		c[i*n+j] = sum
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Fork(dot, i, j, threadsched.Hint(&at[i*n]), threadsched.Hint(&b[j*n]), 0)
		}
	}
	s.Run(false)

	fmt.Println(c[0], s.Stats().TotalRun)
	// Output: 16 64
}

// Threads that must respect dependences use the DepScheduler (the
// extension the paper's §6 leaves open): here a three-stage pipeline.
func ExampleDepScheduler() {
	d := threadsched.NewDep(threadsched.Config{})
	var log []string
	say := func(what string) threadsched.Func {
		return func(int, int) { log = append(log, what) }
	}
	load := d.Fork(say("load"), 0, 0, 0, 0, 0)
	transform := d.Fork(say("transform"), 0, 0, 0, 0, 0, load)
	d.Fork(say("store"), 0, 0, 0, 0, 0, transform)
	if err := d.Run(); err != nil {
		panic(err)
	}
	fmt.Println(log)
	// Output: [load transform store]
}

// Workloads with more than three locality dimensions use the
// k-dimensional scheduler (§2.3's general algorithm).
func ExampleKScheduler() {
	s := threadsched.NewK(threadsched.KConfig{K: 5, CacheSize: 1 << 20})
	ran := 0
	for i := 0; i < 4; i++ {
		s.Fork(func(int, int) { ran++ }, i, 0,
			uint64(i), uint64(i)*2, uint64(i)*3, uint64(i)*4, uint64(i)*5)
	}
	s.Run(false)
	fmt.Println(ran, s.K())
	// Output: 4 5
}
