package threadsched_test

// Pins the failure-model facade: the re-exported error types, sentinels,
// and fault-injection surface are usable from outside the module's
// internal packages exactly as the README documents.

import (
	"context"
	"errors"
	"testing"

	"threadsched"
)

func TestFacadeThreadPanicError(t *testing.T) {
	in := threadsched.NewFaultInjector(threadsched.FaultConfig{
		At: map[threadsched.FaultSite][]uint64{threadsched.FaultThreadPanic: {3}},
	})
	s := threadsched.New(threadsched.Config{})
	for i := 0; i < 8; i++ {
		n := uint64(i)
		s.Fork(func(int, int) { in.MaybePanic(threadsched.FaultThreadPanic, n) }, i, 0, 0, 0, 0)
	}
	err := s.RunContext(context.Background(), false)
	var tp *threadsched.ThreadPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("err = %v, want *threadsched.ThreadPanicError", err)
	}
	if tp.Thread != 3 {
		t.Errorf("Thread = %d, want 3", tp.Thread)
	}
}

func TestFacadeDependencySentinels(t *testing.T) {
	d := threadsched.NewDep(threadsched.Config{})
	d.Fork(func(int, int) {}, 0, 0, 0, 0, 0, threadsched.ThreadID(9))
	err := d.RunContext(context.Background())
	if !errors.Is(err, threadsched.ErrUnknownDependency) {
		t.Fatalf("err = %v, want ErrUnknownDependency", err)
	}
	var ue *threadsched.UnknownDependencyError
	if !errors.As(err, &ue) || ue.Dep != 9 {
		t.Fatalf("err = %#v, want *UnknownDependencyError{Dep: 9}", err)
	}
	// The cycle sentinel and type are wired even though the public Fork
	// API cannot build a cycle.
	if !errors.Is(&threadsched.DependencyCycleError{}, threadsched.ErrDependencyCycle) {
		t.Error("DependencyCycleError does not match ErrDependencyCycle")
	}
}

func TestFacadeTraceSentinelsDistinct(t *testing.T) {
	if threadsched.ErrTraceCorrupt == nil || threadsched.ErrTraceTruncated == nil {
		t.Fatal("trace sentinels are nil")
	}
	if errors.Is(threadsched.ErrTraceCorrupt, threadsched.ErrTraceTruncated) {
		t.Error("corrupt and truncated sentinels must be distinct")
	}
}

func TestFacadeNilInjectorDisabled(t *testing.T) {
	var in *threadsched.FaultInjector
	if in.Enabled() {
		t.Error("nil injector reports enabled")
	}
	in.MaybePanic(threadsched.FaultThreadPanic, 0) // must not panic
	in.MaybeDelay(threadsched.FaultWorkerDelay, 0)
}
