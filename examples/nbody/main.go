// Barnes–Hut N-body with locality scheduling (§4.4): each time step forks
// one thread per body, hinted with the body's x/y/z position, so bodies
// that are close in space — and traverse largely the same octree nodes —
// run consecutively. This is the paper's irregular, dynamic workload where
// compile-time tiling is impossible.
//
//	go run ./examples/nbody [-bodies 64000] [-steps 4] [-cache 2097152]
package main

import (
	"flag"
	"fmt"
	"time"

	"threadsched"
	"threadsched/internal/apps/nbody"
)

func main() {
	bodies := flag.Int("bodies", 64000, "number of bodies (paper: 64000)")
	steps := flag.Int("steps", 4, "time steps (paper: 4)")
	cacheSize := flag.Uint64("cache", 2<<20, "scheduling target cache size in bytes")
	flag.Parse()

	run := func(name string, s *nbody.System, step func(*nbody.System)) (float64, [3]float64) {
		start := time.Now()
		for i := 0; i < *steps; i++ {
			step(s)
		}
		d := time.Since(start).Seconds()
		fmt.Printf("  %-11s %8.3fs\n", name, d)
		return d, s.Bodies[0].Pos
	}

	fmt.Printf("Barnes-Hut, %d bodies, %d steps, θ=%.1f\n", *bodies, *steps,
		nbody.NewSystem(1, 1).Theta)

	unSys := nbody.NewSystem(*bodies, 7)
	unT, unPos := run("unthreaded", unSys, func(s *nbody.System) {
		nbody.StepUnthreaded(s, nil)
	})

	sched := threadsched.NewForCache(*cacheSize)
	thSys := nbody.NewSystem(*bodies, 7)
	thT, thPos := run("threaded", thSys, func(s *nbody.System) {
		nbody.StepThreaded(s, sched, nil)
	})

	if unPos != thPos {
		panic("threaded trajectory diverged — forces must come from the tree snapshot")
	}
	rs := sched.LastRun()
	fmt.Printf("last step: %d body threads in %d bins (avg %.0f/bin); speedup %.2fx\n",
		rs.Threads, rs.Bins, rs.AvgPerBin, unT/thT)
	fmt.Println("(paper, Table 8: threaded was 4% faster on the R8000, 15% on the R10000)")
}
