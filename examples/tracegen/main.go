// Tracegen demonstrates the Pixie-style tracing substrate: it runs an
// instrumented workload variant, writes its address trace to a file in the
// binary trace format, and prints a summary. Feed the output to
// cmd/tracesim to replay it through any cache configuration:
//
//	go run ./examples/tracegen -workload sor -out /tmp/sor.trace
//	go run ./cmd/tracesim -machine r8000 -scale 64 /tmp/sor.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"threadsched/internal/apps/matmul"
	"threadsched/internal/apps/sor"
	"threadsched/internal/sim"
	"threadsched/internal/trace"
	"threadsched/internal/vm"
)

func main() {
	workload := flag.String("workload", "sor", "workload to trace: sor, sor-threaded, matmul, matmul-threaded")
	n := flag.Int("n", 251, "problem size")
	iters := flag.Int("iters", 5, "iterations (sor)")
	out := flag.String("out", "workload.trace", "output trace file")
	cacheSize := flag.Uint64("cache", 32<<10, "cache size hint for threaded scheduling")
	flag.Parse()

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := trace.NewWriter(f)

	cpu := sim.NewCPU(w)
	as := vm.NewAddressSpace()
	switch *workload {
	case "sor":
		sor.NewTracedArray(cpu, as, *n).Untiled(*iters)
	case "sor-threaded":
		th := sim.NewThreads(cpu, as, sor.ThreadedScheduler(*cacheSize))
		sor.NewTracedArray(cpu, as, *n).Threaded(*iters, th)
	case "matmul":
		matmul.NewTraced(cpu, as, *n).Interchanged()
	case "matmul-threaded":
		th := sim.NewThreads(cpu, as, matmul.ThreadedScheduler(*cacheSize))
		matmul.NewTraced(cpu, as, *n).Threaded(th)
	default:
		log.Fatalf("unknown workload %q", *workload)
	}

	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d references (%d instructions executed) to %s (%.1f MB, %.2f bytes/ref)\n",
		w.Count(), cpu.Instructions, *out,
		float64(info.Size())/(1<<20), float64(info.Size())/float64(w.Count()))
}
