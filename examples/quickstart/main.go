// Quickstart: the paper's §2.1 example — replace a matrix multiply's
// dot-product inner loop with one fine-grained thread per (i, j), hinted
// with the addresses of the two vectors it reads, and let the scheduler
// run threads bin by bin so vector pairs are reused while cache-resident.
//
//	go run ./examples/quickstart [-n 512] [-cache 2097152]
package main

import (
	"flag"
	"fmt"
	"time"

	"threadsched"
)

func main() {
	n := flag.Int("n", 512, "matrix dimension")
	cacheSize := flag.Uint64("cache", 2<<20, "second-level cache size in bytes")
	flag.Parse()

	// at is Aᵀ (row i of A contiguous), b is B (column j contiguous),
	// both column-major in the paper's Fortran sense.
	at := make([]float64, *n**n)
	b := make([]float64, *n**n)
	c := make([]float64, *n**n)
	for i := range at {
		at[i] = float64(i%13) * 0.25
		b[i] = float64(i%7) * 0.5
	}

	// Sequential baseline: dot products in row-major order.
	size := *n
	start := time.Now()
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			c[i*size+j] = dot(at[i*size:(i+1)*size], b[j*size:(j+1)*size])
		}
	}
	seq := time.Since(start)
	checksum := c[size*size-1]

	// Threaded: same dot products, scheduled for locality. The closure is
	// hoisted so forking allocates nothing.
	s := threadsched.New(threadsched.Config{CacheSize: *cacheSize})
	body := func(i, j int) {
		c[i*size+j] = dot(at[i*size:(i+1)*size], b[j*size:(j+1)*size])
	}
	start = time.Now()
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			s.Fork(body, i, j, threadsched.Hint(&at[i*size]), threadsched.Hint(&b[j*size]), 0)
		}
	}
	s.Run(false)
	thr := time.Since(start)
	if c[size*size-1] != checksum {
		panic("threaded result differs from sequential")
	}

	rs := s.LastRun()
	fmt.Printf("n=%d: %d dot-product threads in %d bins (avg %.0f threads/bin)\n",
		size, rs.Threads, rs.Bins, rs.AvgPerBin)
	fmt.Printf("sequential: %v\n", seq.Round(time.Millisecond))
	fmt.Printf("threaded:   %v  (%.2fx)\n", thr.Round(time.Millisecond),
		seq.Seconds()/thr.Seconds())
	fmt.Println("(the threaded win grows once the vectors outgrow your last-level cache)")
}

func dot(x, y []float64) float64 {
	var sum float64
	for k := range x {
		sum += x[k] * y[k]
	}
	return sum
}
