// Multigrid: the deployment §4.3 motivates — a geometric V-cycle Poisson
// solver whose red-black smoothing sweeps run as fine-grained,
// locality-scheduled line threads on every grid level ("In practical
// multigrid solvers, iters ≈ 5").
//
//	go run ./examples/multigrid [-n 1025] [-cache 2097152]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"threadsched"
	"threadsched/internal/apps/pde"
)

func main() {
	n := flag.Int("n", 1025, "grid size, must be 2^k+1")
	cacheSize := flag.Uint64("cache", 2<<20, "scheduling target cache size in bytes")
	flag.Parse()

	// Manufactured problem: u* = x(1−x)y(1−y), f = −Δu*.
	h := 1.0 / float64(*n-1)
	b := make([]float64, *n**n)
	exact := make([]float64, *n**n)
	for j := 1; j < *n-1; j++ {
		for i := 1; i < *n-1; i++ {
			x, y := float64(i)*h, float64(j)*h
			exact[j**n+i] = x * (1 - x) * y * (1 - y)
			b[j**n+i] = h * h * 2 * (x*(1-x) + y*(1-y))
		}
	}

	solve := func(name string, sched *threadsched.Scheduler) []float64 {
		mg, err := pde.NewMultigrid(*n, sched)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		u, cycles := mg.Solve(b, 1e-10, 50)
		fmt.Printf("  %-10s %8.3fs  %d V-cycles  residual %.2e\n",
			name, time.Since(start).Seconds(), cycles, mg.ResidualNorm())
		return u
	}

	fmt.Printf("multigrid Poisson solve, n=%d (%d levels of red-black smoothing)\n",
		*n, levels(*n))
	us := solve("sequential", nil)
	ut := solve("threaded", threadsched.New(threadsched.Config{CacheSize: *cacheSize}))

	var worst float64
	for k := range us {
		if us[k] != ut[k] {
			log.Fatalf("threaded solve diverged at %d", k)
		}
		if d := us[k] - exact[k]; d > worst || -d > worst {
			if d < 0 {
				d = -d
			}
			worst = d
		}
	}
	fmt.Printf("threaded == sequential bit-for-bit; max error vs exact solution %.2e (O(h²) = %.2e)\n",
		worst, h*h)
}

func levels(n int) int {
	l := 0
	for ; n >= 3; n = (n-1)/2 + 1 {
		l++
		if n == 3 {
			break
		}
	}
	return l
}
