// SOR with locality scheduling (§4.3): all t·(n−2) column-relaxation
// threads are forked before a single run, so the scheduler's bins gather
// the same strip of columns across every sweep and relax it to completion
// while it is cache-resident — the run-time analogue of hand time-skewed
// tiling, legitimate because the asynchronous iteration converges under
// reordering.
//
//	go run ./examples/sor [-n 2005] [-t 30] [-cache 2097152]
package main

import (
	"flag"
	"fmt"
	"time"

	"threadsched"
	"threadsched/internal/apps/sor"
)

func main() {
	n := flag.Int("n", 2005, "array dimension (paper: 2005)")
	t := flag.Int("t", 30, "sweeps (paper: 30)")
	cacheSize := flag.Uint64("cache", 2<<20, "scheduling target cache size in bytes")
	flag.Parse()

	fmt.Printf("SOR, n=%d (%.1f MB array), t=%d sweeps\n",
		*n, float64(*n**n*8)/(1<<20), *t)

	run := func(name string, fn func(a []float64)) ([]float64, float64) {
		a := sor.NewArray(*n)
		start := time.Now()
		fn(a)
		d := time.Since(start).Seconds()
		fmt.Printf("  %-11s %8.3fs   (sweep delta %.2e)\n", name, d, sor.SweepDelta(a, *n))
		return a, d
	}

	_, unT := run("untiled", func(a []float64) { sor.Untiled(a, *n, *t) })

	s, tb := sor.TileParams(*n, *t, *cacheSize)
	_, tiT := run("hand-tiled", func(a []float64) { sor.HandTiled(a, *n, *t, s, tb) })

	sched := threadsched.New(threadsched.Config{CacheSize: *cacheSize, BlockSize: *cacheSize / 2})
	_, thT := run("threaded", func(a []float64) { sor.Threaded(a, *n, *t, sched) })

	rs := sched.LastRun()
	fmt.Printf("threaded scheduling: %d threads in %d bins (avg %.0f/bin)\n",
		rs.Threads, rs.Bins, rs.AvgPerBin)
	fmt.Printf("speedups over untiled: hand-tiled %.2fx, threaded %.2fx\n", unT/tiT, unT/thT)
	fmt.Println("(paper, Table 6: on the R10000 hand-tiled and threaded both ran ~3x the untiled speed)")
}
