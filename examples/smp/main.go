// SMP: the paper's §7 conjecture, demonstrated — one threaded Barnes–Hut
// step on a simulated multiprocessor with coherent private caches, under
// three dispatch disciplines: intact locality bins, thread scatter, and
// Cilk-style work stealing. Locality bins keep the parallel speedup of
// the others while avoiding most cache misses and coherence traffic.
//
//	go run ./examples/smp [-bodies 8000] [-procs 4] [-scale 16]
package main

import (
	"flag"
	"fmt"
	"log"

	"threadsched/internal/machine"
	"threadsched/internal/smp"
	"threadsched/internal/stealing"
)

func main() {
	bodies := flag.Int("bodies", 8000, "number of bodies")
	procs := flag.Int("procs", 4, "simulated processors")
	scale := flag.Uint64("scale", 16, "cache scale divisor (power of two)")
	flag.Parse()

	m := machine.R8000().Scaled(*scale)
	cfg := smp.Config{Procs: *procs, Machine: m, Coherence: true}

	fmt.Printf("Barnes-Hut step, %d bodies, %d processors (%s, %d KB private L2 each)\n\n",
		*bodies, *procs, m.Name, m.L2CacheSize()>>10)
	fmt.Printf("  %-22s %12s %14s %9s\n", "dispatch", "L2 misses", "invalidations", "speedup")

	row := func(name string, r smp.Result) {
		fmt.Printf("  %-22s %12d %14d %8.2fx\n",
			name, r.L2Misses, r.Stats.Invalidations, r.Speedup())
	}

	loc, err := smp.NBodyExperiment(cfg, *bodies, smp.LocalityBins, 42)
	if err != nil {
		log.Fatal(err)
	}
	row("locality bins", loc)

	scat, err := smp.NBodyExperiment(cfg, *bodies, smp.Scatter, 42)
	if err != nil {
		log.Fatal(err)
	}
	row("scatter", scat)

	ws, steals, err := stealing.NBodyExperiment(cfg, *bodies, 42)
	if err != nil {
		log.Fatal(err)
	}
	row(fmt.Sprintf("work stealing (%d st)", steals), ws)

	fmt.Println("\n(locality bins: each bin runs whole on one processor, so the per-bin")
	fmt.Println(" working set owns one cache; scatter and stealing split spatial")
	fmt.Println(" neighbours across processors and pay for it in misses and false sharing)")
}
