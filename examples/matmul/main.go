// Matrix multiply at paper scale on the host machine: runs the §4.2
// variants — interchanged, transposed, tiled, threaded — over real memory
// and reports wall-clock times, reproducing Table 2's shape with your
// machine's caches instead of an SGI's.
//
//	go run ./examples/matmul [-n 1024] [-cache <L2/L3 bytes>] [-tile 0]
package main

import (
	"flag"
	"fmt"
	"time"

	"threadsched"
	"threadsched/internal/apps/matmul"
)

func main() {
	n := flag.Int("n", 1024, "matrix dimension (paper: 1024)")
	cacheSize := flag.Uint64("cache", 2<<20, "scheduling target cache size in bytes (set to your LLC)")
	tile := flag.Int("tile", 0, "cache tile edge (0 = derive from -cache)")
	flag.Parse()

	A := make([]float64, *n**n)
	B := make([]float64, *n**n)
	C := make([]float64, *n**n)
	matmul.Fill(A, *n, 1.0)
	matmul.Fill(B, *n, 2.0)
	if *tile == 0 {
		*tile = matmul.TileFor(*cacheSize)
	}

	run := func(name string, fn func()) float64 {
		start := time.Now()
		fn()
		d := time.Since(start)
		fmt.Printf("  %-20s %8.3fs   (C[n,n]=%.3f)\n", name, d.Seconds(), C[*n**n-1])
		return d.Seconds()
	}

	fmt.Printf("matrix multiply, n=%d (data %.1f MB, 3 matrices), tile=%d\n",
		*n, float64(*n**n*8)/(1<<20), *tile)
	base := run("interchanged", func() { matmul.Interchanged(C, A, B, *n) })
	run("transposed", func() { matmul.Transposed(C, A, B, *n) })
	run("tiled interchanged", func() { matmul.TiledInterchanged(C, A, B, *n, *tile) })
	run("tiled transposed", func() { matmul.TiledTransposed(C, A, B, *n, *tile) })

	sched := threadsched.New(threadsched.Config{
		CacheSize: *cacheSize,
		BlockSize: *cacheSize / 2, // the paper's matmul configuration (§4.2)
	})
	thr := run("threaded", func() { matmul.Threaded(C, A, B, *n, sched) })
	rs := sched.LastRun()
	fmt.Printf("threaded scheduling: %d threads in %d bins (avg %.0f/bin); speedup over untiled %.2fx\n",
		rs.Threads, rs.Bins, rs.AvgPerBin, base/thr)
	fmt.Println("(paper, Table 2: threaded beat untiled 5.1x on the R8000, 2.2x on the R10000;")
	fmt.Println(" modern CPUs hide much of the effect behind large LLCs and prefetchers —")
	fmt.Println(" run `locality-bench -exp table2` for the simulated 1996 machines)")
}
